"""The named scenarios the harness ships with.

Each scenario stresses one deployment-scale question the paper's testbed
answered with EC2 machines:

* ``baseline`` -- steady state: every client online, uniform links.
* ``client_churn`` -- a fraction of clients drops offline each round and
  late joiners register mid-run.  A sender's queued work survives its own
  missed rounds; a request *delivered* while the recipient is offline is
  lost with the round's mailbox (the recipient never held that round's IBE
  key -- forward secrecy), so churn measurably suppresses friendship
  formation until senders retry.
* ``straggler_mix`` -- one mix server sits behind a slow link, dragging the
  whole chain (the pipeline is only as fast as its slowest hop).
* ``pkg_failure`` -- a PKG partitions away for one add-friend round (an
  anytrust deployment cannot open the round without it) and then recovers.
* ``flash_crowd`` -- a burst of friend requests lands in one round, forcing
  mailbox re-sizing and a bandwidth spike.
* ``geo_distributed`` -- clients spread across regions with realistic
  inter-region latencies; servers are hosted in one region.
* ``pipelined_rounds`` -- high-latency links with overlapped rounds: round
  N+1's announce+submit runs while round N is still mixing and being
  scanned, so throughput is bounded by the slowest stage rather than the
  sum of stages.  Run it with ``pipelined=False`` for the sequential
  baseline the speedup is measured against (``python -m repro.sim --sweep``
  does both and reports the ratio).
* ``sharded_entry`` -- the ``repro.cluster`` tier: N mailbox-range entry/CDN
  shards behind capacity-limited access links, ingress envelope batching,
  and an optional Zipf(α) mailbox-skewed client population.  The
  ``--sweep-shards`` grid measures submit-stage scaling with shard count
  and per-shard load imbalance under skew (``BENCH_shard.json``).
* ``metropolis`` -- 10,000 clients on the ``accelerated`` crypto engine:
  the scale the pluggable engine (``--sweep-crypto``, ``BENCH_crypto.json``)
  buys over the pure-Python hot path.
* ``megacity`` -- 100,000 clients on the rebuilt simulator core: batched
  round stages over columnar frames, slotted delivery, and fluid-flow
  client links (``--sweep-fidelity`` measures what each fidelity level
  costs and how far ``fluid`` diverges; ``BENCH_net.json``).

``run_scenario("name", num_clients=500)`` is the programmatic entry point;
``python -m repro.sim`` is the CLI (``--sweep`` runs a clients x latency
grid and writes ``BENCH_sweep.json``).
"""

from __future__ import annotations

from repro.core.coordinator import Deployment
from repro.net.links import LinkSpec
from repro.net.simulated import SimulatedNetwork
from repro.sim.scenario import Scenario, ScenarioResult, ScenarioSpec, with_overrides
from repro.utils.rng import DeterministicRng


class BaselineScenario(Scenario):
    """Steady state: everyone online, uniform links."""


class ClientChurnScenario(Scenario):
    """A deterministic fraction of clients is offline each round; new
    clients join between add-friend rounds.

    The initial pairs' *senders* stay online every round: their requests'
    fate then measures exactly what churn does to the protocol (recipients
    missing delivery rounds) and what sender-side retry recovers -- not the
    confound of the sender itself being away.  Everyone else (recipients,
    bystanders, late joiners) churns.
    """

    offline_fraction = 0.25
    joins_per_round = 2

    def __init__(self, spec: ScenarioSpec) -> None:
        super().__init__(spec)
        self._rng = DeterministicRng(f"{spec.seed}/{spec.name}/churn")
        self._joined = 0

    def participants(self, deployment: Deployment, protocol: str, round_index: int):
        online = [
            client
            for client in deployment.clients.values()
            if self._rng.uniform() >= self.offline_fraction
            or client.email in self.sender_emails
        ]
        # A round with zero online clients tells us nothing; keep one.
        return online or [next(iter(deployment.clients.values()))]

    def before_round(self, deployment, net, protocol, round_index) -> None:
        if protocol != "add-friend" or round_index == 0:
            return
        for _ in range(self.joins_per_round):
            email = f"late{self._joined}@sim.example.org"
            self._joined += 1
            deployment.create_client(email)
            # Late joiners immediately want in: befriend an anchor user.
            self.extra_handles.append(
                deployment.session(email).add_friend(self.client_email(0))
            )


class StragglerMixScenario(Scenario):
    """One mix server behind a slow, thin link stalls every batch hop."""

    requires_simulated_network = True
    straggler = "mix1"
    straggler_link = LinkSpec.of(latency_ms=400, bandwidth_mbps=5)

    def configure(self, deployment: Deployment, net: SimulatedNetwork) -> None:
        # Explicit pair links outrank endpoint overrides, so replace the
        # server-mesh links touching the straggler as well as its default.
        for other in self.server_endpoints():
            if other != self.straggler:
                net.topology.set_link(self.straggler, other, self.straggler_link)
        net.topology.set_endpoint(self.straggler, self.straggler_link)


class PkgFailureScenario(Scenario):
    """A PKG partitions away for one add-friend round, then heals.

    While the PKG is gone the commit-reveal round cannot open (anytrust
    needs every PKG), so the harness records an aborted round; after the
    partition heals the following rounds complete and the friendships that
    were queued before the failure still establish.
    """

    requires_simulated_network = True
    failed_pkg = "pkg1"
    fail_at_round = 1  # 0-based add-friend round index

    def before_round(self, deployment, net, protocol, round_index) -> None:
        # Heal in before_round rather than after_round: aborted rounds skip
        # after_round, recovery must be observable on the very next round,
        # and before_round is the one hook both the sequential and the
        # pipelined drive paths call for every round.
        if protocol != "add-friend" or round_index > self.fail_at_round:
            net.topology.heal_endpoint(self.failed_pkg)
        elif round_index == self.fail_at_round:
            net.topology.partition_endpoint(self.failed_pkg)


class FlashCrowdScenario(Scenario):
    """A burst of add-friend requests all queued into one round."""

    flash_at_round = 1  # 0-based add-friend round index
    flash_fraction = 0.8

    def __init__(self, spec: ScenarioSpec) -> None:
        super().__init__(spec)
        self._rng = DeterministicRng(f"{spec.seed}/{spec.name}/flash")

    def before_round(self, deployment, net, protocol, round_index) -> None:
        if protocol != "add-friend" or round_index != self.flash_at_round:
            return
        lonely = [
            client
            for client in deployment.clients.values()
            if not client.friends() and not client.addfriend.pending_in_queue()
        ]
        self._rng.shuffle(lonely)
        count = int(len(lonely) * self.flash_fraction) & ~1  # even
        for i in range(0, count, 2):
            try:
                lonely[i].add_friend(lonely[i + 1].email)
            except Exception:  # already queued/friended via an earlier pair
                continue


class PipelinedRoundsScenario(Scenario):
    """Back-to-back rounds on slow links, overlapped by the round engine.

    Every WAN round trip costs ~2x the link latency, so at 200 ms a round's
    submit stage and its scan stage each take near half a second of
    simulated time.  Driving rounds through ``Deployment.run_rounds`` with
    pipelining overlaps round N+1's announce+submit with round N's
    mix+scan; the spec's ``pipelined`` flag is the only difference from the
    sequential baseline, so flipping it measures the pipeline's speedup on
    identical topology and workload.
    """


class ShardedEntryScenario(Scenario):
    """The sharded entry/CDN tier under a capacity-limited access link.

    Every entry endpoint's ingress is capped at ``spec.shard_access_mbps``
    (the shared uplink a real front-end has), so the submit stage queues
    behind it: with one entry server the whole population serializes
    through one access link, with N shards through N.  Submit-stage
    latency then scales down with the shard count -- the measurement
    ``--sweep-shards`` tracks -- while ingress batching (``SubmitBatch``
    frames of ``spec.ingress_batch_size`` envelopes) amortizes per-frame
    overhead on that contended link.

    ``spec.zipf_alpha > 0`` skews the client population's mailbox placement
    (see :class:`~repro.bench.workloads.ZipfMailboxWorkload`), producing the
    per-shard load imbalance the paper's skew experiment (§8.4) studies at
    the mailbox level.  Requires ``spec.fixed_mailbox_count`` so placement
    is stable across rounds.
    """

    def __init__(self, spec: ScenarioSpec) -> None:
        super().__init__(spec)
        self._emails: dict[int, str] = {}
        self._workload = None
        if spec.entry_shards > 1 and spec.zipf_alpha > 0:
            from repro.bench.workloads import ZipfMailboxWorkload

            if spec.fixed_mailbox_count is None:
                raise ValueError(
                    "zipf_alpha > 0 needs fixed_mailbox_count: mailbox placement "
                    "must be stable across rounds for the skew to mean anything"
                )
            self._workload = ZipfMailboxWorkload(
                shard_count=spec.entry_shards,
                mailbox_count=spec.fixed_mailbox_count,
                alpha=spec.zipf_alpha,
                seed=f"{spec.seed}/{spec.name}/zipf",
            )

    def client_email(self, index: int) -> str:
        if self._workload is None:
            return super().client_email(index)
        email = self._emails.get(index)
        if email is None:
            email = self._emails[index] = self._workload.email_for(index)
        return email


class MegacityScenario(Scenario):
    """The paper's headline scale: 100,000 clients in one deployment.

    Only reachable through the rebuilt simulator core: batched round stages
    build every client's envelope through one crypto-engine batch per
    round, frames live in columnar storage instead of per-frame
    ``Frame``/``Event`` objects, arrivals coalesce into per-(destination,
    slot) heap events, and the client links run in ``fluid`` mode (its
    spec default) so the bulk traffic moves as deterministic flows with no
    per-frame jitter draws.  ``--fidelity slotted`` keeps full per-frame
    stochastic fidelity at roughly the same cost if the divergence (see
    ``--sweep-fidelity``) matters for the measurement at hand.

    Two rounds per protocol (the minimum for confirmations and dial
    delivery) with 5,000 friend pairs keep a 100k run in single-figure
    minutes on the accelerated crypto engine.
    """


class MetropolisScenario(Scenario):
    """A city-scale population: 10,000 clients in one deployment.

    The scenario that motivated the pluggable crypto engine: with the pure
    backend a population this size spends minutes per round inside
    ~1.3 ms-per-seal Python ChaCha20/X25519; under the ``accelerated``
    backend (its spec default) the same workload is bounded by the
    event simulator, not the crypto.  Run it on a stdlib-only host with
    ``--crypto-backend pure`` (and patience) -- the error raised by the
    default selection is the dependency gate working as intended.

    The workload keeps the per-client story of ``baseline`` (disjoint
    friend pairs, then one direction dials) at 25x its default scale; two
    rounds per protocol (the minimum for confirmations and dial delivery)
    keep a 10k run in single-figure minutes.
    """


class GeoDistributedScenario(Scenario):
    """Clients in three regions; all servers hosted in ``us-east``."""

    requires_simulated_network = True
    regions = ("us-east", "eu-west", "ap-south")
    region_links = {
        ("us-east", "us-east"): LinkSpec.of(latency_ms=15, bandwidth_mbps=100, jitter_ms=5),
        ("eu-west", "eu-west"): LinkSpec.of(latency_ms=15, bandwidth_mbps=100, jitter_ms=5),
        ("ap-south", "ap-south"): LinkSpec.of(latency_ms=15, bandwidth_mbps=100, jitter_ms=5),
        ("us-east", "eu-west"): LinkSpec.of(latency_ms=80, bandwidth_mbps=50, jitter_ms=15),
        ("us-east", "ap-south"): LinkSpec.of(latency_ms=180, bandwidth_mbps=30, jitter_ms=25),
        ("eu-west", "ap-south"): LinkSpec.of(latency_ms=140, bandwidth_mbps=30, jitter_ms=20),
    }

    def configure(self, deployment: Deployment, net: SimulatedNetwork) -> None:
        for server in self.server_endpoints():
            net.topology.assign_region(server, "us-east")
        for (a, b), link in self.region_links.items():
            net.topology.set_region_link(a, b, link)
        for index in range(self.spec.num_clients):
            region = self.regions[index % len(self.regions)]
            net.topology.assign_region(self.client_email(index), region)


class PassiveObserverScenario(Scenario):
    """One arm of the paired distinguishing experiment (§6's threat model).

    A target client either queues one real friend request ("acts") or stays
    idle; every other client -- and, when idle, the target too -- submits
    only cover traffic.  Since every online client participates every round
    regardless, the two arms are wire-identical: the only signal a passive
    observer gets is the published noisy mailbox counts, where acting adds
    one message on top of the Laplace noise.  The audit harness
    (:mod:`repro.sim.privacy_sweep`) runs many paired trials over a noise
    grid and compares the empirical advantage to ``(e^eps - 1)/(e^eps + 1)``.
    """

    target_acts = True

    def queue_friendships(self, deployment: Deployment) -> None:
        if not self.target_acts:
            return
        a, b = self.client_email(0), self.client_email(1)
        self.request_handles.append(deployment.session(a).add_friend(b))
        self.sender_emails.add(a)


class PassiveObserverIdleScenario(PassiveObserverScenario):
    """The idle arm: the target submits cover traffic like everyone else."""

    target_acts = False


SCENARIOS: dict[str, tuple[type[Scenario], ScenarioSpec]] = {
    "baseline": (
        BaselineScenario,
        ScenarioSpec(name="baseline", description="steady state, uniform links"),
    ),
    "client_churn": (
        ClientChurnScenario,
        ScenarioSpec(name="client_churn", description="25% offline per round, late joiners"),
    ),
    "straggler_mix": (
        StragglerMixScenario,
        ScenarioSpec(name="straggler_mix", description="one mix server on a slow link"),
    ),
    "pkg_failure": (
        PkgFailureScenario,
        ScenarioSpec(
            name="pkg_failure",
            description="a PKG partitions for one round, then recovers",
            addfriend_rounds=4,
        ),
    ),
    "flash_crowd": (
        FlashCrowdScenario,
        ScenarioSpec(
            name="flash_crowd",
            description="burst of friend requests in one round",
            addfriend_rounds=3,
        ),
    ),
    "geo_distributed": (
        GeoDistributedScenario,
        ScenarioSpec(name="geo_distributed", description="clients across three regions"),
    ),
    "metropolis": (
        MetropolisScenario,
        ScenarioSpec(
            name="metropolis",
            description="10k clients on the accelerated crypto engine",
            num_clients=10_000,
            friend_pairs=1_000,
            # Two add-friend rounds so the pairs' confirmations land (the
            # handshake needs the reply round), and two dialing rounds so
            # the freshly anchored keywheels reach their dialable round.
            addfriend_rounds=2,
            dialing_rounds=2,
            crypto_backend="accelerated",
        ),
    ),
    "megacity": (
        MegacityScenario,
        ScenarioSpec(
            name="megacity",
            description="100k clients on fluid links and batched round stages",
            num_clients=100_000,
            friend_pairs=5_000,
            addfriend_rounds=2,
            dialing_rounds=2,
            crypto_backend="accelerated",
            fidelity="fluid",
        ),
    ),
    "sharded_entry": (
        ShardedEntryScenario,
        ScenarioSpec(
            name="sharded_entry",
            description="mailbox-range sharded entry/CDN tier behind capped access links",
            num_clients=120,
            addfriend_rounds=2,
            dialing_rounds=2,
            client_link=LinkSpec.of(latency_ms=200, bandwidth_mbps=50, jitter_ms=10),
            entry_shards=4,
            ingress_batch_size=16,
            shard_access_mbps=1.0,
            fixed_mailbox_count=8,
        ),
    ),
    "passive_observer": (
        PassiveObserverScenario,
        ScenarioSpec(
            name="passive_observer",
            description="distinguishing-audit arm: the target acts",
            num_clients=16,
            addfriend_rounds=1,
            dialing_rounds=0,
        ),
    ),
    "passive_observer_idle": (
        PassiveObserverIdleScenario,
        ScenarioSpec(
            name="passive_observer_idle",
            description="distinguishing-audit arm: the target stays idle",
            num_clients=16,
            addfriend_rounds=1,
            dialing_rounds=0,
        ),
    ),
    "pipelined_rounds": (
        PipelinedRoundsScenario,
        ScenarioSpec(
            name="pipelined_rounds",
            description="overlapped rounds on 200 ms links (pipelined=False for baseline)",
            num_clients=60,
            # One extra add-friend round vs the baseline scenario: a
            # confirming reply queued while round N is scanned overlaps
            # round N+1's already-built submissions, so it rides round N+2.
            addfriend_rounds=3,
            dialing_rounds=8,
            client_link=LinkSpec.of(latency_ms=200, bandwidth_mbps=50, jitter_ms=10),
            pipelined=True,
        ),
    ),
}


def scenario_names() -> list[str]:
    return sorted(SCENARIOS)


def make_scenario(name: str, **overrides) -> Scenario:
    if name not in SCENARIOS:
        raise KeyError(f"unknown scenario {name!r}; choose from {scenario_names()}")
    cls, spec = SCENARIOS[name]
    return cls(with_overrides(spec, **overrides))


def run_scenario(name: str, **overrides) -> ScenarioResult:
    """Build and run a named scenario; overrides are ScenarioSpec fields."""
    return make_scenario(name, **overrides).run()
