"""Scenario sweeps: a clients x link-latency grid with trend tracking.

A sweep runs one scenario over every point of a ``clients x latency`` grid,
once with the sequential round driver and once with the pipelined one, and
reports the round throughput of both plus their ratio.  The machine-readable
result lands in ``BENCH_sweep.json`` (via :mod:`repro.bench.reporting`), so
the throughput trajectory -- and the pipeline's speedup at high-latency
links -- is tracked across PRs the same way the paper-figure benchmarks are.

Two further axes ride the same report:

* ``retry_horizons`` drives ``client_churn`` once per horizon (0 = retry
  disabled) and records friend-request liveness -- what fraction of the
  always-online senders' requests reached ``confirmed`` -- plus the retry
  overhead in extra submissions and bytes.
* ``fanout_pkgs`` runs the high-latency scenario at that PKG count with the
  client's per-PKG RPCs issued sequentially vs fanned out in one concurrent
  phase, and records the add-friend submit-stage speedup.

A second, independent sweep covers the sharded entry tier
(:func:`run_shard_sweep`, CLI ``--sweep-shards``): the ``sharded_entry``
scenario over a shard-count x Zipf-skew grid plus an ingress-batch-size
comparison, written to ``BENCH_shard.json`` -- submit-stage throughput
scaling, per-shard load imbalance, and SubmitBatch frame counts.  Its
``cdn_egress_mbps`` axis (CLI ``--sweep-cdn-egress``) caps every CDN
shard's shared egress link and records scan-stage latency per shard count
-- the download-side mirror of the entry-ingress measurement.

The crypto-engine sweep lives in :mod:`repro.sim.crypto_sweep`
(CLI ``--sweep-crypto``, ``BENCH_crypto.json``).

A third sweep covers the simulator core itself (:func:`run_fidelity_sweep`,
CLI ``--sweep-fidelity``, ``BENCH_net.json``): one scenario over a
clients x fidelity grid (``frames`` / ``slotted`` / ``fluid``), asserting
byte-identical results for ``slotted`` and measuring ``fluid``'s bounded
divergence plus what each fidelity level costs the host.

``python -m repro.sim --sweep`` is the CLI; :func:`run_sweep` the API.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.reporting import format_table, table_report, write_json_report
from repro.net.links import LinkSpec
from repro.sim.scenario import ScenarioResult


@dataclass
class SweepPoint:
    """One grid cell: the same workload driven sequentially and pipelined."""

    num_clients: int
    latency_ms: float
    sequential: ScenarioResult
    pipelined: ScenarioResult

    def speedup(self, protocol: str = "dialing") -> float:
        base = self.sequential.throughput.get(protocol, {}).get("rounds_per_sec", 0.0)
        pipe = self.pipelined.throughput.get(protocol, {}).get("rounds_per_sec", 0.0)
        return pipe / base if base > 0 else 0.0

    def row(self) -> list:
        seq_dial = self.sequential.throughput["dialing"]["rounds_per_sec"]
        pipe_dial = self.pipelined.throughput["dialing"]["rounds_per_sec"]
        seq_all = self.sequential.throughput["overall"]["rounds_per_sec"]
        pipe_all = self.pipelined.throughput["overall"]["rounds_per_sec"]
        return [
            self.num_clients,
            int(self.latency_ms),
            f"{seq_dial:.3f}",
            f"{pipe_dial:.3f}",
            f"{self.speedup('dialing'):.2f}x",
            f"{seq_all:.3f}",
            f"{pipe_all:.3f}",
            f"{self.speedup('overall'):.2f}x",
        ]


@dataclass
class RetryPoint:
    """One retry-axis cell: client_churn at one retry horizon (0 = off)."""

    retry_horizon: int
    result: ScenarioResult

    def row(self) -> list:
        requests = self.result.friend_requests
        initial = requests.get("initial", requests)
        addfriend = self.result.rounds_for("add-friend")
        return [
            self.retry_horizon or "off",
            initial["total"],
            initial["confirmed"],
            f"{initial['confirmed_fraction']:.2f}",
            initial["retries"],
            len(addfriend),
            f"{self.result.total_bytes_sent / 2**20:.2f}",
        ]

    def to_dict(self) -> dict:
        return {
            "retry_horizon": self.retry_horizon,
            "result": self.result.to_dict(),
        }


@dataclass
class FanoutComparison:
    """The same workload with sequential vs parallel per-PKG client RPCs."""

    pkg_servers: int
    sequential: ScenarioResult
    parallel: ScenarioResult

    def submit_speedup(self) -> float:
        par = self.parallel.mean_submit_stage("add-friend")
        seq = self.sequential.mean_submit_stage("add-friend")
        return seq / par if par > 0 else 0.0

    def row(self) -> list:
        return [
            self.pkg_servers,
            f"{self.sequential.mean_submit_stage('add-friend'):.3f}",
            f"{self.parallel.mean_submit_stage('add-friend'):.3f}",
            f"{self.submit_speedup():.2f}x",
        ]

    def to_dict(self) -> dict:
        return {
            "pkg_servers": self.pkg_servers,
            "sequential_submit_stage_s": round(
                self.sequential.mean_submit_stage("add-friend"), 6
            ),
            "parallel_submit_stage_s": round(self.parallel.mean_submit_stage("add-friend"), 6),
            "submit_stage_speedup": round(self.submit_speedup(), 4),
            "sequential": self.sequential.to_dict(),
            "parallel": self.parallel.to_dict(),
        }


@dataclass
class SweepResult:
    """Everything one sweep produced."""

    scenario: str
    points: list[SweepPoint] = field(default_factory=list)
    #: client_churn liveness per retry horizon (empty unless requested).
    retry_points: list[RetryPoint] = field(default_factory=list)
    #: sequential-vs-parallel PKG fan-out comparison (None unless requested).
    fanout: FanoutComparison | None = None

    HEADERS = [
        "clients", "link ms",
        "seq dial r/s", "pipe dial r/s", "dial speedup",
        "seq all r/s", "pipe all r/s", "all speedup",
    ]
    RETRY_HEADERS = [
        "retry K", "requests", "confirmed", "confirmed frac",
        "retries", "af rounds", "MiB",
    ]
    FANOUT_HEADERS = ["pkgs", "seq submit s", "par submit s", "submit speedup"]

    def table(self) -> tuple[list[str], list[list]]:
        return list(self.HEADERS), [point.row() for point in self.points]

    def retry_table(self) -> tuple[list[str], list[list]]:
        return list(self.RETRY_HEADERS), [point.row() for point in self.retry_points]

    def fanout_table(self) -> tuple[list[str], list[list]]:
        rows = [self.fanout.row()] if self.fanout is not None else []
        return list(self.FANOUT_HEADERS), rows

    def to_report(self) -> dict:
        headers, rows = self.table()
        report = table_report(
            headers, rows, title=f"sweep of {self.scenario}: sequential vs pipelined rounds"
        )
        report["scenario"] = self.scenario
        report["points"] = [
            {
                "clients": point.num_clients,
                "latency_ms": point.latency_ms,
                "sequential": point.sequential.to_dict(),
                "pipelined": point.pipelined.to_dict(),
                "dialing_speedup": round(point.speedup("dialing"), 4),
                "overall_speedup": round(point.speedup("overall"), 4),
            }
            for point in self.points
        ]
        report["retry_points"] = [point.to_dict() for point in self.retry_points]
        report["fanout"] = self.fanout.to_dict() if self.fanout is not None else None
        return report


def sweep_link(latency_ms: float) -> LinkSpec:
    """The client link used at one latency grid point."""
    return LinkSpec.of(latency_ms=latency_ms, bandwidth_mbps=50, jitter_ms=10)


# --------------------------------------------------------------------------- #
# The shard sweep (repro.cluster): shard count x Zipf skew, plus batching
# --------------------------------------------------------------------------- #
@dataclass
class ShardPoint:
    """One grid cell: the sharded_entry scenario at (shards, zipf alpha)."""

    entry_shards: int
    zipf_alpha: float
    result: ScenarioResult

    def submit_stage(self) -> float:
        return self.result.mean_submit_stage("add-friend")

    def submit_throughput(self) -> float:
        """Envelopes per second through the add-friend submit stage."""
        rounds = [
            r
            for r in self.result.rounds_for("add-friend")
            if not r.aborted and r.submit_stage_s > 0
        ]
        if not rounds:
            return 0.0
        return sum(r.submissions for r in rounds) / sum(r.submit_stage_s for r in rounds)

    def imbalance(self) -> float:
        return self.result.shard_loads.get("imbalance", 1.0)

    def row(self, baseline_stage: float | None) -> list:
        speedup = baseline_stage / self.submit_stage() if baseline_stage and self.submit_stage() else 0.0
        return [
            self.entry_shards,
            f"{self.zipf_alpha:g}",
            f"{self.submit_stage():.3f}",
            f"{speedup:.2f}x" if speedup else "-",
            f"{self.submit_throughput():.1f}",
            f"{self.imbalance():.2f}",
            f"{self.result.total_bytes_sent / 2**20:.2f}",
        ]

    def to_dict(self) -> dict:
        return {
            "entry_shards": self.entry_shards,
            "zipf_alpha": self.zipf_alpha,
            "addfriend_submit_stage_s": round(self.submit_stage(), 6),
            "submit_throughput_envelopes_per_s": round(self.submit_throughput(), 3),
            "imbalance": self.imbalance(),
            "result": self.result.to_dict(),
        }


@dataclass
class BatchPoint:
    """One batching cell: the same sharded workload at one batch size."""

    batch_size: int
    result: ScenarioResult

    def submit_frames(self) -> int:
        """Wire messages (both directions) carrying submissions shard-ward."""
        return self.result.calls_by_method.get("submit_batch", 0)

    def row(self) -> list:
        return [
            self.batch_size,
            self.submit_frames(),
            f"{self.result.mean_submit_stage('add-friend'):.3f}",
            f"{self.result.total_bytes_sent / 2**20:.3f}",
        ]

    def to_dict(self) -> dict:
        return {
            "batch_size": self.batch_size,
            "submit_batch_frames": self.submit_frames(),
            "addfriend_submit_stage_s": round(self.result.mean_submit_stage("add-friend"), 6),
            "total_bytes_sent": self.result.total_bytes_sent,
            "calls_by_method": self.result.calls_by_method,
        }


@dataclass
class CdnEgressPoint:
    """One CDN-egress cell: (shards, per-CDN-shard egress cap in Mbit/s)."""

    entry_shards: int
    cdn_egress_mbps: float
    result: ScenarioResult

    def scan_stage(self) -> float:
        return self.result.mean_scan_stage("add-friend")

    def row(self, baseline_stage: float | None) -> list:
        stage = self.scan_stage()
        speedup = baseline_stage / stage if baseline_stage and stage else 0.0
        return [
            self.entry_shards,
            f"{self.cdn_egress_mbps:g}" if self.cdn_egress_mbps else "uncapped",
            f"{stage:.3f}",
            f"{speedup:.2f}x" if speedup else "-",
            f"{self.result.mean_submit_stage('add-friend'):.3f}",
            f"{self.result.total_bytes_sent / 2**20:.2f}",
        ]

    def to_dict(self) -> dict:
        return {
            "entry_shards": self.entry_shards,
            "cdn_egress_mbps": self.cdn_egress_mbps,
            "addfriend_scan_stage_s": round(self.scan_stage(), 6),
            "addfriend_submit_stage_s": round(
                self.result.mean_submit_stage("add-friend"), 6
            ),
            "result": self.result.to_dict(),
        }


@dataclass
class ShardSweepResult:
    """Everything one shard sweep produced (lands in BENCH_shard.json)."""

    points: list[ShardPoint] = field(default_factory=list)
    batch_points: list[BatchPoint] = field(default_factory=list)
    cdn_egress_points: list[CdnEgressPoint] = field(default_factory=list)

    HEADERS = [
        "shards", "zipf a", "af submit s", "speedup",
        "submit env/s", "imbalance", "MiB",
    ]
    BATCH_HEADERS = ["batch", "submit frames", "af submit s", "MiB"]
    CDN_HEADERS = ["shards", "cdn egress", "af scan s", "speedup", "af submit s", "MiB"]

    def baseline_stage(self, zipf_alpha: float) -> float | None:
        """The single-shard submit stage the speedups are measured against."""
        for point in self.points:
            if point.entry_shards == 1 and point.zipf_alpha == zipf_alpha:
                return point.submit_stage()
        for point in self.points:  # no exact baseline: use the uniform one
            if point.entry_shards == 1:
                return point.submit_stage()
        return None

    def speedup_at_max_shards(self) -> float:
        """Submit-stage speedup of the largest uniform grid point vs 1 shard."""
        uniform = [p for p in self.points if p.zipf_alpha == 0]
        if not uniform:
            uniform = self.points
        best = max(uniform, key=lambda p: p.entry_shards, default=None)
        if best is None:
            return 0.0
        baseline = self.baseline_stage(best.zipf_alpha)
        stage = best.submit_stage()
        return baseline / stage if baseline and stage else 0.0

    def table(self) -> tuple[list[str], list[list]]:
        rows = [point.row(self.baseline_stage(point.zipf_alpha)) for point in self.points]
        return list(self.HEADERS), rows

    def batch_table(self) -> tuple[list[str], list[list]]:
        return list(self.BATCH_HEADERS), [point.row() for point in self.batch_points]

    def cdn_baseline_stage(self, cdn_egress_mbps: float) -> float | None:
        """The 1-shard scan stage the CDN-egress speedups compare against."""
        for point in self.cdn_egress_points:
            if point.entry_shards == 1 and point.cdn_egress_mbps == cdn_egress_mbps:
                return point.scan_stage()
        return None

    def cdn_egress_table(self) -> tuple[list[str], list[list]]:
        rows = [
            point.row(self.cdn_baseline_stage(point.cdn_egress_mbps))
            for point in self.cdn_egress_points
        ]
        return list(self.CDN_HEADERS), rows

    def to_report(self) -> dict:
        headers, rows = self.table()
        report = table_report(
            headers, rows, title="sharded entry tier: submit-stage scaling and load imbalance"
        )
        report["points"] = [point.to_dict() for point in self.points]
        report["batching"] = [point.to_dict() for point in self.batch_points]
        report["cdn_egress"] = [point.to_dict() for point in self.cdn_egress_points]
        report["submit_stage_speedup_at_max_shards"] = round(self.speedup_at_max_shards(), 4)
        return report


def run_shard_sweep(
    shard_counts: list[int] | None = None,
    zipf_alphas: list[float] | None = None,
    clients: int = 80,
    latency_ms: float = 200.0,
    access_mbps: float = 0.5,
    batch_size: int = 16,
    batch_sizes: list[int] | None = None,
    cdn_egress_mbps: list[float] | None = None,
    progress=None,
    **overrides,
) -> ShardSweepResult:
    """Run ``sharded_entry`` over a shard-count x Zipf-alpha grid.

    Every point shares the client count, the 200 ms-class links, and the
    *per-shard* access capacity, so the shard axis measures horizontal
    scaling of the submit stage and the alpha axis measures how skewed
    mailbox placement unbalances per-shard load.  One caveat on the shard
    axis: the 1-shard baseline is the classic tier (no ingress proxy, one
    frame per envelope), so multi-shard points fold ingress batching's
    frame amortization into their speedup.  The ``batch_sizes`` section
    (run at the largest shard count, uniform placement) isolates exactly
    that batching share -- compare its ``batch=1`` row against the grid to
    separate the two effects; at the default operating point batching
    contributes ~0.1 s of the ~1.1 s stage, the rest is sharding.
    """
    from repro.sim.scenarios import run_scenario

    shard_counts = shard_counts if shard_counts else [1, 2, 4]
    zipf_alphas = zipf_alphas if zipf_alphas is not None else [0.0, 1.2]
    seed = overrides.pop("seed", "shard-sweep")
    overrides.setdefault("addfriend_rounds", 2)
    overrides.setdefault("dialing_rounds", 1)
    # Placement must be stable and resolvable for every shard count on the
    # grid: pin one mailbox count >= the largest shard count for all points.
    mailbox_count = overrides.pop("fixed_mailbox_count", max(8, 2 * max(shard_counts)))
    result = ShardSweepResult()

    def run_point(
        num_shards: int, alpha: float, batch: int, cdn_egress: float = 0.0
    ) -> ScenarioResult:
        # The seed only grows the egress suffix for capped points so every
        # pre-existing grid cell keeps its historical seed (and stays
        # comparable across PRs in BENCH_shard.json).
        point_seed = f"{seed}/s{num_shards}/a{alpha:g}"
        if cdn_egress > 0:
            point_seed += f"/e{cdn_egress:g}"
        return run_scenario(
            "sharded_entry",
            num_clients=clients,
            client_link=sweep_link(latency_ms),
            entry_shards=num_shards,
            zipf_alpha=alpha if num_shards > 1 else 0.0,
            shard_access_mbps=access_mbps,
            cdn_egress_mbps=cdn_egress,
            ingress_batch_size=batch,
            fixed_mailbox_count=mailbox_count,
            seed=point_seed,
            **overrides,
        )

    for num_shards in shard_counts:
        for alpha in zipf_alphas:
            if num_shards == 1 and alpha > 0:
                continue  # one shard has no placement to skew
            if progress:
                progress(f"shard sweep: {num_shards} shards @ zipf {alpha:g}")
            result.points.append(
                ShardPoint(
                    entry_shards=num_shards,
                    zipf_alpha=alpha,
                    result=run_point(num_shards, alpha, batch_size),
                )
            )

    batch_shards = max(shard_counts)
    for batch in batch_sizes or []:
        if progress:
            progress(f"shard sweep: ingress batch {batch} @ {batch_shards} shards")
        result.batch_points.append(
            BatchPoint(batch_size=batch, result=run_point(batch_shards, 0.0, batch))
        )

    # The CDN-egress axis: cap every CDN shard's shared egress and watch the
    # scan stage (mailbox downloads) queue behind it -- then scale with the
    # shard count the same way the submit stage scales behind entry ingress.
    for cdn_egress in cdn_egress_mbps or []:
        for num_shards in shard_counts:
            if progress:
                cap = f"{cdn_egress:g} Mbps" if cdn_egress else "uncapped"
                progress(f"shard sweep: cdn egress {cap} @ {num_shards} shards")
            result.cdn_egress_points.append(
                CdnEgressPoint(
                    entry_shards=num_shards,
                    cdn_egress_mbps=cdn_egress,
                    result=run_point(num_shards, 0.0, batch_size, cdn_egress),
                )
            )
    return result


def emit_shard_report(result: ShardSweepResult, name: str = "shard") -> str:
    """Print the shard tables and write ``BENCH_<name>.json``; returns the path."""
    headers, rows = result.table()
    print(format_table(headers, rows, title="sharded entry tier: shard count x zipf skew"))
    if result.batch_points:
        headers, rows = result.batch_table()
        print(
            format_table(
                headers, rows, title="ingress envelope batching (SubmitBatch frames on the wire)"
            )
        )
    if result.cdn_egress_points:
        headers, rows = result.cdn_egress_table()
        print(
            format_table(
                headers, rows, title="CDN egress capacity: scan-stage scaling with CDN shard count"
            )
        )
    print(f"submit-stage speedup at max shards: {result.speedup_at_max_shards():.2f}x")
    path = write_json_report(name, result.to_report())
    return str(path)


def run_sweep(
    scenario: str = "pipelined_rounds",
    clients: list[int] | None = None,
    latencies_ms: list[float] | None = None,
    retry_horizons: list[int] | None = None,
    fanout_pkgs: int | None = None,
    retry_workload: dict | None = None,
    fanout_workload: dict | None = None,
    progress=None,
    **overrides,
) -> SweepResult:
    """Run ``scenario`` over the grid, sequential and pipelined at each point.

    ``overrides`` are forwarded to every grid run (``seed``, round counts,
    ...); ``progress`` is an optional ``callable(str)`` for CLI feedback.

    ``retry_horizons`` (e.g. ``[0, 2]``; 0 = retry disabled) additionally
    runs ``client_churn`` once per horizon and records friend-request
    liveness and retry overhead.  ``fanout_pkgs`` additionally runs the
    scenario at that PKG count with sequential vs parallel per-PKG client
    RPCs and records the add-friend submit-stage speedup.  Both sections use
    their own fixed workloads, so the grid overrides do not skew them.
    """
    from repro.sim.scenarios import run_scenario

    clients = clients if clients else [40, 80]
    latencies_ms = latencies_ms if latencies_ms else [40.0, 200.0]
    result = SweepResult(scenario=scenario)
    for num_clients in clients:
        for latency_ms in latencies_ms:
            point_overrides = dict(
                overrides,
                num_clients=num_clients,
                client_link=sweep_link(latency_ms),
            )
            if progress:
                progress(f"sweep: {num_clients} clients @ {latency_ms:g} ms links")
            sequential = run_scenario(scenario, pipelined=False, **point_overrides)
            pipelined = run_scenario(scenario, pipelined=True, **point_overrides)
            result.points.append(
                SweepPoint(
                    num_clients=num_clients,
                    latency_ms=latency_ms,
                    sequential=sequential,
                    pipelined=pipelined,
                )
            )

    seed = overrides.get("seed", "sweep")
    retry_args = dict(
        num_clients=40, friend_pairs=12, addfriend_rounds=8, dialing_rounds=0,
        seed=f"{seed}/retry",
    )
    retry_args.update(retry_workload or {})
    for horizon in retry_horizons or []:
        if progress:
            progress(f"sweep: client_churn retry_horizon={horizon or 'off'}")
        churn = run_scenario(
            "client_churn", retry_horizon=horizon or None, **retry_args
        )
        result.retry_points.append(RetryPoint(retry_horizon=horizon, result=churn))

    if fanout_pkgs:
        fanout_args = dict(
            num_clients=24, friend_pairs=6, addfriend_rounds=2, dialing_rounds=0,
            seed=f"{seed}/fanout",
        )
        fanout_args.update(fanout_workload or {})
        runs = {}
        for mode in ("sequential", "parallel"):
            if progress:
                progress(f"sweep: pkg fan-out {mode} @ {fanout_pkgs} PKGs")
            runs[mode] = run_scenario(
                scenario,
                pipelined=False,
                num_pkg_servers=fanout_pkgs,
                pkg_fanout=mode,
                **fanout_args,
            )
        result.fanout = FanoutComparison(
            pkg_servers=fanout_pkgs,
            sequential=runs["sequential"],
            parallel=runs["parallel"],
        )
    return result


def emit_sweep_report(result: SweepResult, name: str = "sweep") -> str:
    """Print the sweep tables and write ``BENCH_<name>.json``; returns the path."""
    headers, rows = result.table()
    print(format_table(headers, rows, title=f"sweep of {result.scenario}"))
    if result.retry_points:
        headers, rows = result.retry_table()
        print(
            format_table(
                headers, rows, title="client_churn liveness: always-online senders, per retry horizon"
            )
        )
    if result.fanout is not None:
        headers, rows = result.fanout_table()
        print(
            format_table(
                headers, rows, title="add-friend submit stage: sequential vs parallel PKG fan-out"
            )
        )
    path = write_json_report(name, result.to_report())
    return str(path)


# -- the simulator-core fidelity sweep (CLI --sweep-fidelity) ---------------

def _comparable_dict(result: ScenarioResult) -> dict:
    """A result's dict with the fidelity-varying bookkeeping stripped.

    ``wall_seconds`` is host time, ``metrics`` carries scheduler/heap gauges
    that legitimately differ across delivery mechanics, and ``fidelity`` is
    the axis itself; everything else -- per-round latencies, deliveries,
    byte counts, liveness -- must match bit-for-bit between ``frames`` and
    ``slotted``.
    """
    d = result.to_dict()
    for key in ("wall_seconds", "metrics", "fidelity"):
        d.pop(key, None)
    return d


@dataclass
class FidelityPoint:
    """One grid cell: a scenario at one client count and fidelity level."""

    num_clients: int
    fidelity: str
    result: ScenarioResult
    #: Whether this point's comparable results equal the same-size
    #: ``frames`` point's (None for the ``frames`` points themselves).
    identical_to_frames: bool | None = None
    #: Max relative per-round latency deviation from the ``frames`` point.
    latency_divergence: float | None = None
    #: Sum of absolute per-round delivered_real deviations from ``frames``.
    delivery_divergence: int | None = None

    def delivered_total(self) -> int:
        return sum(r.delivered_real for r in self.result.rounds)

    def row(self) -> list:
        mean_lat = (
            sum(self.result.round_latencies()) / len(self.result.round_latencies())
            if self.result.round_latencies()
            else 0.0
        )
        identical = "-" if self.identical_to_frames is None else (
            "yes" if self.identical_to_frames else "NO"
        )
        divergence = (
            "-" if self.latency_divergence is None else f"{self.latency_divergence:.3f}"
        )
        return [
            self.num_clients,
            self.fidelity,
            f"{self.result.wall_seconds:.2f}",
            f"{mean_lat:.3f}",
            self.delivered_total(),
            identical,
            divergence,
        ]

    def to_dict(self) -> dict:
        return {
            "num_clients": self.num_clients,
            "fidelity": self.fidelity,
            "identical_to_frames": self.identical_to_frames,
            "latency_divergence": self.latency_divergence,
            "delivery_divergence": self.delivery_divergence,
            "result": self.result.to_dict(),
        }


@dataclass
class FidelitySweepResult:
    """Everything one fidelity sweep produced (lands in BENCH_net.json)."""

    scenario: str = "baseline"
    points: list[FidelityPoint] = field(default_factory=list)

    HEADERS = [
        "clients", "fidelity", "wall s", "mean round s",
        "delivered", "identical", "latency div",
    ]

    def table(self) -> tuple[list[str], list[list]]:
        return list(self.HEADERS), [point.row() for point in self.points]

    def slotted_identical(self) -> bool:
        """True when every slotted point matched its frames point exactly."""
        slotted = [p for p in self.points if p.fidelity == "slotted"]
        return bool(slotted) and all(p.identical_to_frames for p in slotted)

    def max_fluid_divergence(self) -> float:
        """The largest relative round-latency deviation any fluid point showed."""
        return max(
            (p.latency_divergence or 0.0 for p in self.points if p.fidelity == "fluid"),
            default=0.0,
        )

    def wall_seconds_by_fidelity(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for point in self.points:
            totals[point.fidelity] = round(
                totals.get(point.fidelity, 0.0) + point.result.wall_seconds, 3
            )
        return totals

    def to_report(self) -> dict:
        headers, rows = self.table()
        report = table_report(
            headers, rows, title="simulator-core fidelity: frames vs slotted vs fluid"
        )
        report["scenario"] = self.scenario
        report["points"] = [point.to_dict() for point in self.points]
        report["slotted_identical"] = self.slotted_identical()
        report["max_fluid_latency_divergence"] = round(self.max_fluid_divergence(), 6)
        report["wall_seconds_by_fidelity"] = self.wall_seconds_by_fidelity()
        return report


def run_fidelity_sweep(
    client_counts: list[int] | None = None,
    fidelities: list[str] | None = None,
    scenario: str = "baseline",
    progress=None,
    **overrides,
) -> FidelitySweepResult:
    """Run one scenario over a clients x fidelity grid.

    Every same-size point shares its seed, so ``frames`` and ``slotted``
    must produce byte-identical comparable results (the per-message keyed
    rng guarantee) and ``fluid``'s deviation is a pure measurement of the
    flow approximation.  The wall-clock column is the point of the sweep:
    what each fidelity level costs the host at each population size.
    """
    from repro.sim.scenarios import run_scenario

    client_counts = client_counts or [100, 300]
    fidelities = fidelities or ["frames", "slotted", "fluid"]
    seed = overrides.pop("seed", "fidelity-sweep")
    result = FidelitySweepResult(scenario=scenario)
    for clients in client_counts:
        frames_point: ScenarioResult | None = None
        for fidelity in fidelities:
            if progress:
                progress(f"fidelity sweep: {clients} clients @ {fidelity}")
            point_result = run_scenario(
                scenario,
                num_clients=clients,
                fidelity=fidelity,
                seed=f"{seed}/c{clients}",
                **overrides,
            )
            point = FidelityPoint(clients, fidelity, point_result)
            if fidelity == "frames":
                frames_point = point_result
            elif frames_point is not None:
                point.identical_to_frames = _comparable_dict(point_result) == _comparable_dict(
                    frames_point
                )
                base_rounds = frames_point.rounds
                divergences = [
                    abs(mine.latency_s - base.latency_s) / base.latency_s
                    for mine, base in zip(point_result.rounds, base_rounds)
                    if base.latency_s > 0
                ]
                point.latency_divergence = round(max(divergences, default=0.0), 6)
                point.delivery_divergence = sum(
                    abs(mine.delivered_real - base.delivered_real)
                    for mine, base in zip(point_result.rounds, base_rounds)
                )
            result.points.append(point)
    return result


def emit_fidelity_report(result: FidelitySweepResult, name: str = "net") -> str:
    """Print the fidelity table and write ``BENCH_<name>.json``; returns the path."""
    headers, rows = result.table()
    print(
        format_table(
            headers, rows, title=f"simulator-core fidelity grid on {result.scenario}"
        )
    )
    print(f"slotted identical to frames: {'yes' if result.slotted_identical() else 'NO'}")
    print(f"max fluid latency divergence: {result.max_fluid_divergence():.3f}")
    path = write_json_report(name, result.to_report())
    return str(path)


# -- the deployment-runtime sweep (CLI --sweep-runtime) ---------------------

#: The runtimes the grid accepts (ScenarioSpec.runtime values).
RUNTIMES = ("sim", "asyncio", "mp")


@dataclass
class RuntimePoint:
    """One grid cell: a scenario at one client count on one runtime.

    ``sim`` points report simulated seconds per stage; ``asyncio``/``mp``
    points report *real* wall-clock seconds (the transport clock is
    ``time.monotonic``), so the stage columns are not comparable across the
    runtime axis -- the wall-seconds column and the parity column are.
    """

    runtime: str
    num_clients: int
    result: ScenarioResult
    #: Whether confirmed friendships and delivered calls match the
    #: same-size ``sim`` point's (None when the grid has no sim reference,
    #: or for the sim points themselves).
    parity_with_sim: bool | None = None

    def stage_mean(self, name: str) -> float:
        rows = [r for r in self.result.rounds if not r.aborted]
        if not rows:
            return 0.0
        return sum(getattr(r, name) for r in rows) / len(rows)

    def row(self) -> list:
        parity = "-" if self.parity_with_sim is None else (
            "yes" if self.parity_with_sim else "NO"
        )
        return [
            self.num_clients,
            self.runtime,
            f"{self.result.wall_seconds:.2f}",
            f"{self.stage_mean('latency_s'):.3f}",
            f"{self.stage_mean('submit_stage_s'):.3f}",
            f"{self.stage_mean('mix_stage_s'):.3f}",
            f"{self.stage_mean('scan_stage_s'):.3f}",
            self.result.friendships_confirmed,
            self.result.calls_delivered,
            parity,
        ]

    def to_dict(self) -> dict:
        return {
            "runtime": self.runtime,
            "num_clients": self.num_clients,
            "parity_with_sim": self.parity_with_sim,
            "wall_seconds": round(self.result.wall_seconds, 3),
            "mean_round_s": round(self.stage_mean("latency_s"), 6),
            "mean_submit_stage_s": round(self.stage_mean("submit_stage_s"), 6),
            "mean_mix_stage_s": round(self.stage_mean("mix_stage_s"), 6),
            "mean_scan_stage_s": round(self.stage_mean("scan_stage_s"), 6),
            "result": self.result.to_dict(),
        }


@dataclass
class RuntimeCryptoPoint:
    """One crypto-leg cell: the asyncio runtime on one crypto backend.

    On real sockets the mix stage is real wall clock, so this leg re-times
    what the simulated crypto sweep can only model: how the ``parallel``
    backend's worker pool trades against ``pure`` on actual cores.
    """

    crypto_backend: str
    result: ScenarioResult

    def mean_mix_stage(self) -> float:
        rows = [r for r in self.result.rounds if not r.aborted]
        if not rows:
            return 0.0
        return sum(r.mix_stage_s for r in rows) / len(rows)

    def row(self) -> list:
        mean_round = (
            sum(self.result.round_latencies()) / len(self.result.round_latencies())
            if self.result.round_latencies()
            else 0.0
        )
        return [
            self.crypto_backend,
            f"{self.result.wall_seconds:.2f}",
            f"{self.mean_mix_stage():.3f}",
            f"{mean_round:.3f}",
        ]

    def to_dict(self) -> dict:
        return {
            "crypto_backend": self.crypto_backend,
            "wall_seconds": round(self.result.wall_seconds, 3),
            "mean_mix_stage_s": round(self.mean_mix_stage(), 6),
            "result": self.result.to_dict(),
        }


@dataclass
class RuntimeSweepResult:
    """Everything one runtime sweep produced (lands in BENCH_runtime.json)."""

    scenario: str = "baseline"
    points: list[RuntimePoint] = field(default_factory=list)
    crypto_points: list[RuntimeCryptoPoint] = field(default_factory=list)
    skipped_backends: list[str] = field(default_factory=list)

    HEADERS = [
        "clients", "runtime", "wall s", "mean round s",
        "submit s", "mix s", "scan s", "friends", "calls", "parity",
    ]
    CRYPTO_HEADERS = ["backend", "wall s", "mean mix s", "mean round s"]

    def parity_ok(self) -> bool:
        """True when every real-runtime point matched its sim reference."""
        return all(p.parity_with_sim is not False for p in self.points)

    def wall_seconds_by_runtime(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for point in self.points:
            totals[point.runtime] = round(
                totals.get(point.runtime, 0.0) + point.result.wall_seconds, 3
            )
        return totals

    def table(self) -> tuple[list[str], list[list]]:
        return list(self.HEADERS), [point.row() for point in self.points]

    def crypto_table(self) -> tuple[list[str], list[list]]:
        return list(self.CRYPTO_HEADERS), [point.row() for point in self.crypto_points]

    def to_report(self) -> dict:
        headers, rows = self.table()
        report = table_report(
            headers, rows, title=f"deployment runtimes on {self.scenario}: sim vs asyncio vs mp"
        )
        report["scenario"] = self.scenario
        report["points"] = [point.to_dict() for point in self.points]
        report["crypto_points"] = [point.to_dict() for point in self.crypto_points]
        report["skipped_backends"] = list(self.skipped_backends)
        report["parity_ok"] = self.parity_ok()
        report["wall_seconds_by_runtime"] = self.wall_seconds_by_runtime()
        return report


def run_runtime_sweep(
    runtimes: list[str] | None = None,
    client_counts: list[int] | None = None,
    scenario: str = "baseline",
    mp_workers: int = 0,
    crypto_backends: list[str] | None = None,
    progress=None,
    **overrides,
) -> RuntimeSweepResult:
    """Run one scenario over a runtime x clients grid, plus a crypto leg.

    Every same-size point shares its seed, so the protocol outcome is
    deterministic across runtimes -- the parity column asserts exactly
    that: real sockets and worker processes change *when* things happen,
    never *what* is delivered.  The sim point of each size (run first when
    present) is the parity reference.

    The crypto leg then re-runs the first grid size on the ``asyncio``
    runtime once per backend in ``crypto_backends`` (default: ``pure`` and
    ``parallel``; unavailable ones recorded in ``skipped_backends``),
    timing the mix stage on real cores instead of the simulated clock.
    """
    from repro.crypto.engine import backend_available
    from repro.errors import ConfigurationError
    from repro.sim.scenarios import run_scenario

    runtimes = list(runtimes) if runtimes else list(RUNTIMES)
    for runtime in runtimes:
        if runtime not in RUNTIMES:
            raise ConfigurationError(
                f"unknown runtime {runtime!r}: expected one of {', '.join(RUNTIMES)}"
            )
    client_counts = client_counts or [24, 60]
    seed = overrides.pop("seed", "runtime-sweep")
    overrides.setdefault("addfriend_rounds", 2)
    overrides.setdefault("dialing_rounds", 2)
    result = RuntimeSweepResult(scenario=scenario)

    ordered = sorted(runtimes, key=lambda r: r != "sim")  # sim first: parity reference
    for clients in client_counts:
        reference: ScenarioResult | None = None
        for runtime in ordered:
            if progress:
                progress(f"runtime sweep: {clients} clients @ {runtime}")
            point_result = run_scenario(
                scenario,
                num_clients=clients,
                runtime=runtime,
                mp_workers=mp_workers if runtime == "mp" else 0,
                seed=f"{seed}/c{clients}",
                **overrides,
            )
            point = RuntimePoint(runtime, clients, point_result)
            if runtime == "sim":
                reference = point_result
            elif reference is not None:
                point.parity_with_sim = (
                    point_result.friendships_confirmed == reference.friendships_confirmed
                    and point_result.calls_delivered == reference.calls_delivered
                )
            result.points.append(point)

    backends = crypto_backends if crypto_backends is not None else ["pure", "parallel"]
    leg_clients = client_counts[0]
    for backend in backends:
        if not backend_available(backend):
            result.skipped_backends.append(backend)
            if progress:
                progress(f"runtime sweep: backend {backend!r} unavailable; skipped")
            continue
        if progress:
            progress(f"runtime sweep: crypto {backend} @ {leg_clients} clients on asyncio")
        crypto_result = run_scenario(
            scenario,
            num_clients=leg_clients,
            runtime="asyncio",
            crypto_backend=backend,
            seed=f"{seed}/crypto/{backend}",
            **overrides,
        )
        result.crypto_points.append(RuntimeCryptoPoint(backend, crypto_result))
    return result


def emit_runtime_report(result: RuntimeSweepResult, name: str = "runtime") -> str:
    """Print the runtime tables and write ``BENCH_<name>.json``; returns the path."""
    headers, rows = result.table()
    print(
        format_table(
            headers, rows, title=f"deployment-runtime grid on {result.scenario}"
        )
    )
    if result.crypto_points:
        headers, rows = result.crypto_table()
        print(
            format_table(
                headers, rows,
                title="crypto backends on the asyncio runtime (real wall-clock mix stage)",
            )
        )
    if result.skipped_backends:
        print(f"skipped unavailable backends: {', '.join(result.skipped_backends)}")
    print(f"result parity across runtimes: {'yes' if result.parity_ok() else 'NO'}")
    path = write_json_report(name, result.to_report())
    return str(path)
