"""Scenario sweeps: a clients x link-latency grid with trend tracking.

A sweep runs one scenario over every point of a ``clients x latency`` grid,
once with the sequential round driver and once with the pipelined one, and
reports the round throughput of both plus their ratio.  The machine-readable
result lands in ``BENCH_sweep.json`` (via :mod:`repro.bench.reporting`), so
the throughput trajectory -- and the pipeline's speedup at high-latency
links -- is tracked across PRs the same way the paper-figure benchmarks are.

``python -m repro.sim --sweep`` is the CLI; :func:`run_sweep` the API.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.reporting import format_table, table_report, write_json_report
from repro.net.links import LinkSpec
from repro.sim.scenario import ScenarioResult


@dataclass
class SweepPoint:
    """One grid cell: the same workload driven sequentially and pipelined."""

    num_clients: int
    latency_ms: float
    sequential: ScenarioResult
    pipelined: ScenarioResult

    def speedup(self, protocol: str = "dialing") -> float:
        base = self.sequential.throughput.get(protocol, {}).get("rounds_per_sec", 0.0)
        pipe = self.pipelined.throughput.get(protocol, {}).get("rounds_per_sec", 0.0)
        return pipe / base if base > 0 else 0.0

    def row(self) -> list:
        seq_dial = self.sequential.throughput["dialing"]["rounds_per_sec"]
        pipe_dial = self.pipelined.throughput["dialing"]["rounds_per_sec"]
        seq_all = self.sequential.throughput["overall"]["rounds_per_sec"]
        pipe_all = self.pipelined.throughput["overall"]["rounds_per_sec"]
        return [
            self.num_clients,
            int(self.latency_ms),
            f"{seq_dial:.3f}",
            f"{pipe_dial:.3f}",
            f"{self.speedup('dialing'):.2f}x",
            f"{seq_all:.3f}",
            f"{pipe_all:.3f}",
            f"{self.speedup('overall'):.2f}x",
        ]


@dataclass
class SweepResult:
    """Everything one sweep produced."""

    scenario: str
    points: list[SweepPoint] = field(default_factory=list)

    HEADERS = [
        "clients", "link ms",
        "seq dial r/s", "pipe dial r/s", "dial speedup",
        "seq all r/s", "pipe all r/s", "all speedup",
    ]

    def table(self) -> tuple[list[str], list[list]]:
        return list(self.HEADERS), [point.row() for point in self.points]

    def to_report(self) -> dict:
        headers, rows = self.table()
        report = table_report(
            headers, rows, title=f"sweep of {self.scenario}: sequential vs pipelined rounds"
        )
        report["scenario"] = self.scenario
        report["points"] = [
            {
                "clients": point.num_clients,
                "latency_ms": point.latency_ms,
                "sequential": point.sequential.to_dict(),
                "pipelined": point.pipelined.to_dict(),
                "dialing_speedup": round(point.speedup("dialing"), 4),
                "overall_speedup": round(point.speedup("overall"), 4),
            }
            for point in self.points
        ]
        return report


def sweep_link(latency_ms: float) -> LinkSpec:
    """The client link used at one latency grid point."""
    return LinkSpec.of(latency_ms=latency_ms, bandwidth_mbps=50, jitter_ms=10)


def run_sweep(
    scenario: str = "pipelined_rounds",
    clients: list[int] | None = None,
    latencies_ms: list[float] | None = None,
    progress=None,
    **overrides,
) -> SweepResult:
    """Run ``scenario`` over the grid, sequential and pipelined at each point.

    ``overrides`` are forwarded to every run (``seed``, round counts, ...);
    ``progress`` is an optional ``callable(str)`` for CLI feedback.
    """
    from repro.sim.scenarios import run_scenario

    clients = clients if clients else [40, 80]
    latencies_ms = latencies_ms if latencies_ms else [40.0, 200.0]
    result = SweepResult(scenario=scenario)
    for num_clients in clients:
        for latency_ms in latencies_ms:
            point_overrides = dict(
                overrides,
                num_clients=num_clients,
                client_link=sweep_link(latency_ms),
            )
            if progress:
                progress(f"sweep: {num_clients} clients @ {latency_ms:g} ms links")
            sequential = run_scenario(scenario, pipelined=False, **point_overrides)
            pipelined = run_scenario(scenario, pipelined=True, **point_overrides)
            result.points.append(
                SweepPoint(
                    num_clients=num_clients,
                    latency_ms=latency_ms,
                    sequential=sequential,
                    pipelined=pipelined,
                )
            )
    return result


def emit_sweep_report(result: SweepResult, name: str = "sweep") -> str:
    """Print the sweep table and write ``BENCH_<name>.json``; returns the path."""
    headers, rows = result.table()
    print(format_table(headers, rows, title=f"sweep of {result.scenario}"))
    path = write_json_report(name, result.to_report())
    return str(path)
