"""Scenario sweeps: a clients x link-latency grid with trend tracking.

A sweep runs one scenario over every point of a ``clients x latency`` grid,
once with the sequential round driver and once with the pipelined one, and
reports the round throughput of both plus their ratio.  The machine-readable
result lands in ``BENCH_sweep.json`` (via :mod:`repro.bench.reporting`), so
the throughput trajectory -- and the pipeline's speedup at high-latency
links -- is tracked across PRs the same way the paper-figure benchmarks are.

Two further axes ride the same report:

* ``retry_horizons`` drives ``client_churn`` once per horizon (0 = retry
  disabled) and records friend-request liveness -- what fraction of the
  always-online senders' requests reached ``confirmed`` -- plus the retry
  overhead in extra submissions and bytes.
* ``fanout_pkgs`` runs the high-latency scenario at that PKG count with the
  client's per-PKG RPCs issued sequentially vs fanned out in one concurrent
  phase, and records the add-friend submit-stage speedup.

``python -m repro.sim --sweep`` is the CLI; :func:`run_sweep` the API.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.reporting import format_table, table_report, write_json_report
from repro.net.links import LinkSpec
from repro.sim.scenario import ScenarioResult


@dataclass
class SweepPoint:
    """One grid cell: the same workload driven sequentially and pipelined."""

    num_clients: int
    latency_ms: float
    sequential: ScenarioResult
    pipelined: ScenarioResult

    def speedup(self, protocol: str = "dialing") -> float:
        base = self.sequential.throughput.get(protocol, {}).get("rounds_per_sec", 0.0)
        pipe = self.pipelined.throughput.get(protocol, {}).get("rounds_per_sec", 0.0)
        return pipe / base if base > 0 else 0.0

    def row(self) -> list:
        seq_dial = self.sequential.throughput["dialing"]["rounds_per_sec"]
        pipe_dial = self.pipelined.throughput["dialing"]["rounds_per_sec"]
        seq_all = self.sequential.throughput["overall"]["rounds_per_sec"]
        pipe_all = self.pipelined.throughput["overall"]["rounds_per_sec"]
        return [
            self.num_clients,
            int(self.latency_ms),
            f"{seq_dial:.3f}",
            f"{pipe_dial:.3f}",
            f"{self.speedup('dialing'):.2f}x",
            f"{seq_all:.3f}",
            f"{pipe_all:.3f}",
            f"{self.speedup('overall'):.2f}x",
        ]


@dataclass
class RetryPoint:
    """One retry-axis cell: client_churn at one retry horizon (0 = off)."""

    retry_horizon: int
    result: ScenarioResult

    def row(self) -> list:
        requests = self.result.friend_requests
        initial = requests.get("initial", requests)
        addfriend = self.result.rounds_for("add-friend")
        return [
            self.retry_horizon or "off",
            initial["total"],
            initial["confirmed"],
            f"{initial['confirmed_fraction']:.2f}",
            initial["retries"],
            len(addfriend),
            f"{self.result.total_bytes_sent / 2**20:.2f}",
        ]

    def to_dict(self) -> dict:
        return {
            "retry_horizon": self.retry_horizon,
            "result": self.result.to_dict(),
        }


@dataclass
class FanoutComparison:
    """The same workload with sequential vs parallel per-PKG client RPCs."""

    pkg_servers: int
    sequential: ScenarioResult
    parallel: ScenarioResult

    def submit_speedup(self) -> float:
        par = self.parallel.mean_submit_stage("add-friend")
        seq = self.sequential.mean_submit_stage("add-friend")
        return seq / par if par > 0 else 0.0

    def row(self) -> list:
        return [
            self.pkg_servers,
            f"{self.sequential.mean_submit_stage('add-friend'):.3f}",
            f"{self.parallel.mean_submit_stage('add-friend'):.3f}",
            f"{self.submit_speedup():.2f}x",
        ]

    def to_dict(self) -> dict:
        return {
            "pkg_servers": self.pkg_servers,
            "sequential_submit_stage_s": round(
                self.sequential.mean_submit_stage("add-friend"), 6
            ),
            "parallel_submit_stage_s": round(self.parallel.mean_submit_stage("add-friend"), 6),
            "submit_stage_speedup": round(self.submit_speedup(), 4),
            "sequential": self.sequential.to_dict(),
            "parallel": self.parallel.to_dict(),
        }


@dataclass
class SweepResult:
    """Everything one sweep produced."""

    scenario: str
    points: list[SweepPoint] = field(default_factory=list)
    #: client_churn liveness per retry horizon (empty unless requested).
    retry_points: list[RetryPoint] = field(default_factory=list)
    #: sequential-vs-parallel PKG fan-out comparison (None unless requested).
    fanout: FanoutComparison | None = None

    HEADERS = [
        "clients", "link ms",
        "seq dial r/s", "pipe dial r/s", "dial speedup",
        "seq all r/s", "pipe all r/s", "all speedup",
    ]
    RETRY_HEADERS = [
        "retry K", "requests", "confirmed", "confirmed frac",
        "retries", "af rounds", "MiB",
    ]
    FANOUT_HEADERS = ["pkgs", "seq submit s", "par submit s", "submit speedup"]

    def table(self) -> tuple[list[str], list[list]]:
        return list(self.HEADERS), [point.row() for point in self.points]

    def retry_table(self) -> tuple[list[str], list[list]]:
        return list(self.RETRY_HEADERS), [point.row() for point in self.retry_points]

    def fanout_table(self) -> tuple[list[str], list[list]]:
        rows = [self.fanout.row()] if self.fanout is not None else []
        return list(self.FANOUT_HEADERS), rows

    def to_report(self) -> dict:
        headers, rows = self.table()
        report = table_report(
            headers, rows, title=f"sweep of {self.scenario}: sequential vs pipelined rounds"
        )
        report["scenario"] = self.scenario
        report["points"] = [
            {
                "clients": point.num_clients,
                "latency_ms": point.latency_ms,
                "sequential": point.sequential.to_dict(),
                "pipelined": point.pipelined.to_dict(),
                "dialing_speedup": round(point.speedup("dialing"), 4),
                "overall_speedup": round(point.speedup("overall"), 4),
            }
            for point in self.points
        ]
        report["retry_points"] = [point.to_dict() for point in self.retry_points]
        report["fanout"] = self.fanout.to_dict() if self.fanout is not None else None
        return report


def sweep_link(latency_ms: float) -> LinkSpec:
    """The client link used at one latency grid point."""
    return LinkSpec.of(latency_ms=latency_ms, bandwidth_mbps=50, jitter_ms=10)


def run_sweep(
    scenario: str = "pipelined_rounds",
    clients: list[int] | None = None,
    latencies_ms: list[float] | None = None,
    retry_horizons: list[int] | None = None,
    fanout_pkgs: int | None = None,
    retry_workload: dict | None = None,
    fanout_workload: dict | None = None,
    progress=None,
    **overrides,
) -> SweepResult:
    """Run ``scenario`` over the grid, sequential and pipelined at each point.

    ``overrides`` are forwarded to every grid run (``seed``, round counts,
    ...); ``progress`` is an optional ``callable(str)`` for CLI feedback.

    ``retry_horizons`` (e.g. ``[0, 2]``; 0 = retry disabled) additionally
    runs ``client_churn`` once per horizon and records friend-request
    liveness and retry overhead.  ``fanout_pkgs`` additionally runs the
    scenario at that PKG count with sequential vs parallel per-PKG client
    RPCs and records the add-friend submit-stage speedup.  Both sections use
    their own fixed workloads, so the grid overrides do not skew them.
    """
    from repro.sim.scenarios import run_scenario

    clients = clients if clients else [40, 80]
    latencies_ms = latencies_ms if latencies_ms else [40.0, 200.0]
    result = SweepResult(scenario=scenario)
    for num_clients in clients:
        for latency_ms in latencies_ms:
            point_overrides = dict(
                overrides,
                num_clients=num_clients,
                client_link=sweep_link(latency_ms),
            )
            if progress:
                progress(f"sweep: {num_clients} clients @ {latency_ms:g} ms links")
            sequential = run_scenario(scenario, pipelined=False, **point_overrides)
            pipelined = run_scenario(scenario, pipelined=True, **point_overrides)
            result.points.append(
                SweepPoint(
                    num_clients=num_clients,
                    latency_ms=latency_ms,
                    sequential=sequential,
                    pipelined=pipelined,
                )
            )

    seed = overrides.get("seed", "sweep")
    retry_args = dict(
        num_clients=40, friend_pairs=12, addfriend_rounds=8, dialing_rounds=0,
        seed=f"{seed}/retry",
    )
    retry_args.update(retry_workload or {})
    for horizon in retry_horizons or []:
        if progress:
            progress(f"sweep: client_churn retry_horizon={horizon or 'off'}")
        churn = run_scenario(
            "client_churn", retry_horizon=horizon or None, **retry_args
        )
        result.retry_points.append(RetryPoint(retry_horizon=horizon, result=churn))

    if fanout_pkgs:
        fanout_args = dict(
            num_clients=24, friend_pairs=6, addfriend_rounds=2, dialing_rounds=0,
            seed=f"{seed}/fanout",
        )
        fanout_args.update(fanout_workload or {})
        runs = {}
        for mode in ("sequential", "parallel"):
            if progress:
                progress(f"sweep: pkg fan-out {mode} @ {fanout_pkgs} PKGs")
            runs[mode] = run_scenario(
                scenario,
                pipelined=False,
                num_pkg_servers=fanout_pkgs,
                pkg_fanout=mode,
                **fanout_args,
            )
        result.fanout = FanoutComparison(
            pkg_servers=fanout_pkgs,
            sequential=runs["sequential"],
            parallel=runs["parallel"],
        )
    return result


def emit_sweep_report(result: SweepResult, name: str = "sweep") -> str:
    """Print the sweep tables and write ``BENCH_<name>.json``; returns the path."""
    headers, rows = result.table()
    print(format_table(headers, rows, title=f"sweep of {result.scenario}"))
    if result.retry_points:
        headers, rows = result.retry_table()
        print(
            format_table(
                headers, rows, title="client_churn liveness: always-online senders, per retry horizon"
            )
        )
    if result.fanout is not None:
        headers, rows = result.fanout_table()
        print(
            format_table(
                headers, rows, title="add-friend submit stage: sequential vs parallel PKG fan-out"
            )
        )
    path = write_json_report(name, result.to_report())
    return str(path)
