"""Small shared utilities: byte handling, serialization, deterministic RNG."""

from repro.utils.bytes import (
    constant_time_equal,
    int_to_bytes,
    bytes_to_int,
    xor_bytes,
    hexlify,
)
from repro.utils.serialization import Packer, Unpacker
from repro.utils.rng import DeterministicRng

__all__ = [
    "constant_time_equal",
    "int_to_bytes",
    "bytes_to_int",
    "xor_bytes",
    "hexlify",
    "Packer",
    "Unpacker",
    "DeterministicRng",
]
