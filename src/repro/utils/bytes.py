"""Byte-string helpers used across the crypto and protocol layers."""

from __future__ import annotations

import hmac


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Compare two byte strings without leaking where they differ.

    Uses :func:`hmac.compare_digest`, which runs in time independent of the
    contents (though not of the lengths).
    """
    return hmac.compare_digest(a, b)


def int_to_bytes(value: int, length: int, byteorder: str = "big") -> bytes:
    """Encode a non-negative integer into exactly ``length`` bytes."""
    if value < 0:
        raise ValueError("cannot encode negative integer")
    return value.to_bytes(length, byteorder)


def bytes_to_int(data: bytes, byteorder: str = "big") -> int:
    """Decode a byte string into a non-negative integer."""
    return int.from_bytes(data, byteorder)


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} != {len(b)}")
    return bytes(x ^ y for x, y in zip(a, b))


def hexlify(data: bytes, max_len: int = 12) -> str:
    """Short hex preview of a byte string, for logging and __repr__."""
    text = data.hex()
    if len(text) > 2 * max_len:
        return text[: 2 * max_len] + "..."
    return text
