"""Randomness sources.

Production code paths use :func:`secrets.token_bytes` (the OS CSPRNG).  The
simulator, the noise generators, and the benchmark workloads accept a
:class:`DeterministicRng` so that experiments are reproducible run-to-run.
"""

from __future__ import annotations

import hashlib
import secrets


def random_bytes(n: int) -> bytes:
    """Cryptographically secure random bytes (OS CSPRNG)."""
    return secrets.token_bytes(n)


def random_int_below(bound: int) -> int:
    """Uniform random integer in ``[0, bound)`` from the OS CSPRNG."""
    if bound <= 0:
        raise ValueError("bound must be positive")
    return secrets.randbelow(bound)


class DeterministicRng:
    """A seeded, hash-based byte stream for reproducible simulations.

    This is *not* a cryptographically vetted DRBG; it exists so that noise
    draws, shuffles and workloads in tests/benchmarks are repeatable.  The
    stream is SHA-256 in counter mode over the seed.
    """

    def __init__(self, seed: bytes | str | int) -> None:
        if isinstance(seed, int):
            seed = seed.to_bytes(32, "big", signed=False) if seed >= 0 else str(seed).encode()
        elif isinstance(seed, str):
            seed = seed.encode("utf-8")
        self._seed = bytes(seed)
        self._counter = 0
        self._buffer = b""

    def read(self, n: int) -> bytes:
        """Return the next ``n`` bytes of the stream."""
        while len(self._buffer) < n:
            block = hashlib.sha256(
                self._seed + self._counter.to_bytes(8, "big")
            ).digest()
            self._counter += 1
            self._buffer += block
        out, self._buffer = self._buffer[:n], self._buffer[n:]
        return out

    def randint_below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)`` via rejection sampling."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        nbytes = (bound.bit_length() + 7) // 8 + 1
        while True:
            value = int.from_bytes(self.read(nbytes), "big")
            limit = (256**nbytes // bound) * bound
            if value < limit:
                return value % bound

    def uniform(self) -> float:
        """Uniform float in ``[0, 1)`` with 53 bits of precision."""
        return int.from_bytes(self.read(7), "big") % (2**53) / float(2**53)

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle driven by this stream."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint_below(i + 1)
            items[i], items[j] = items[j], items[i]

    def choice(self, items):
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self.randint_below(len(items))]

    def fork(self, label: str) -> "DeterministicRng":
        """Derive an independent child stream (e.g. one per server)."""
        child_seed = hashlib.sha256(self._seed + b"/" + label.encode("utf-8")).digest()
        return DeterministicRng(child_seed)
