"""Minimal length-prefixed binary serialization.

Alpenhorn messages (friend requests, onion layers, mailbox entries) are
fixed- or variable-length concatenations of byte strings and small integers.
The :class:`Packer` / :class:`Unpacker` pair implements a simple canonical
encoding so that signatures are computed over unambiguous byte strings:

* ``u8``/``u32``/``u64`` -- fixed-width big-endian unsigned integers.
* ``f64`` -- an IEEE-754 double, big-endian (used by RPC frames that carry
  model parameters; protocol messages themselves never contain floats).
* ``bytes`` -- a 4-byte big-endian length prefix followed by the raw bytes.
* ``str`` -- UTF-8 encoded, then written as ``bytes``.

The format is deliberately tiny; it has no tags or schema evolution because
every message type in the protocol has a fixed field order.
"""

from __future__ import annotations

import struct

from repro.errors import SerializationError


class Packer:
    """Accumulates fields into a canonical byte string."""

    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def u8(self, value: int) -> "Packer":
        if not 0 <= value < 2**8:
            raise SerializationError(f"u8 out of range: {value}")
        self._parts.append(value.to_bytes(1, "big"))
        return self

    def u32(self, value: int) -> "Packer":
        if not 0 <= value < 2**32:
            raise SerializationError(f"u32 out of range: {value}")
        self._parts.append(value.to_bytes(4, "big"))
        return self

    def u64(self, value: int) -> "Packer":
        if not 0 <= value < 2**64:
            raise SerializationError(f"u64 out of range: {value}")
        self._parts.append(value.to_bytes(8, "big"))
        return self

    def f64(self, value: float) -> "Packer":
        try:
            self._parts.append(struct.pack(">d", value))
        except (struct.error, TypeError) as exc:
            raise SerializationError(f"f64 not packable: {value!r}") from exc
        return self

    def bytes(self, value: bytes) -> "Packer":
        self.u32(len(value))
        self._parts.append(bytes(value))
        return self

    def fixed(self, value: bytes, length: int) -> "Packer":
        """Write exactly ``length`` bytes with no length prefix."""
        if len(value) != length:
            raise SerializationError(
                f"fixed field length mismatch: got {len(value)}, want {length}"
            )
        self._parts.append(bytes(value))
        return self

    def str(self, value: str) -> "Packer":
        return self.bytes(value.encode("utf-8"))

    def pack(self) -> bytes:
        return b"".join(self._parts)


class Unpacker:
    """Reads fields written by :class:`Packer`, in the same order."""

    def __init__(self, data: bytes) -> None:
        self._data = bytes(data)
        self._offset = 0

    def _take(self, n: int) -> bytes:
        if self._offset + n > len(self._data):
            raise SerializationError(
                f"truncated message: need {n} bytes at offset {self._offset}, "
                f"have {len(self._data) - self._offset}"
            )
        chunk = self._data[self._offset : self._offset + n]
        self._offset += n
        return chunk

    def u8(self) -> int:
        return int.from_bytes(self._take(1), "big")

    def u32(self) -> int:
        return int.from_bytes(self._take(4), "big")

    def u64(self) -> int:
        return int.from_bytes(self._take(8), "big")

    def f64(self) -> float:
        return struct.unpack(">d", self._take(8))[0]

    def bytes(self) -> bytes:
        length = self.u32()
        return self._take(length)

    def fixed(self, length: int) -> bytes:
        return self._take(length)

    def str(self) -> str:
        raw = self.bytes()
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise SerializationError("invalid UTF-8 in string field") from exc

    def remaining(self) -> int:
        return len(self._data) - self._offset

    def done(self) -> None:
        """Assert that the whole buffer was consumed."""
        if self.remaining() != 0:
            raise SerializationError(
                f"{self.remaining()} trailing bytes after message"
            )
