"""Shared pytest fixtures for the Alpenhorn reproduction test suite."""

from __future__ import annotations

import pytest

from repro.utils.rng import DeterministicRng


@pytest.fixture
def rng() -> DeterministicRng:
    """A deterministic RNG so tests are reproducible run-to-run."""
    return DeterministicRng(b"alpenhorn-test-seed")


def pytest_addoption(parser):
    parser.addoption(
        "--run-slow",
        action="store_true",
        default=False,
        help="run tests marked slow (full-pairing heavy paths)",
    )


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: slow tests exercising many pairings")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-slow"):
        return
    skip_slow = pytest.mark.skip(reason="use --run-slow to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
