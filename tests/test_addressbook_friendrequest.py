"""Tests for the address book and the friend-request wire format."""

from __future__ import annotations

import pytest

from repro.core.addressbook import AddressBook, FriendshipState, PendingOutgoing, TrustLevel
from repro.core.friendrequest import FriendRequest, sender_statement
from repro.crypto import bls, ed25519, x25519
from repro.errors import ProtocolError, SerializationError
from repro.pkg.server import pkg_statement


class TestAddressBook:
    def test_upsert_and_lookup(self):
        book = AddressBook()
        book.upsert_friend("Bob@Example.org", signing_key=b"\x01" * 32)
        assert book.has_friend("bob@example.org")
        assert book.friend("bob@example.org").signing_key == b"\x01" * 32

    def test_unknown_friend_raises(self):
        with pytest.raises(ProtocolError):
            AddressBook().friend("ghost@example.org")

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError):
            AddressBook().upsert_friend("bob@example.org", bogus_field=1)

    def test_confirmed_friends_filter(self):
        book = AddressBook()
        book.upsert_friend("a@example.org", state=FriendshipState.CONFIRMED)
        book.upsert_friend("b@example.org", state=FriendshipState.REQUEST_SENT)
        assert [f.email for f in book.confirmed_friends()] == ["a@example.org"]

    def test_record_observed_key_tofu(self):
        book = AddressBook()
        assert book.record_observed_key("bob@example.org", b"\x01" * 32)
        assert book.record_observed_key("bob@example.org", b"\x01" * 32)
        # A different key later is a conflict (possible MITM).
        assert not book.record_observed_key("bob@example.org", b"\x02" * 32)

    def test_pending_outgoing_lifecycle(self):
        book = AddressBook()
        pending = PendingOutgoing(email="bob@example.org", dialing_private=b"\x01" * 32, dialing_round=7)
        book.add_pending_outgoing(pending)
        assert book.pending_count() == 1
        assert book.pending_outgoing("BOB@example.org") is pending
        assert book.pop_pending_outgoing("bob@example.org") is pending
        assert book.pending_outgoing("bob@example.org") is None

    def test_remove_friend_clears_pending(self):
        book = AddressBook()
        book.upsert_friend("bob@example.org")
        book.add_pending_outgoing(
            PendingOutgoing(email="bob@example.org", dialing_private=b"\x01" * 32, dialing_round=7)
        )
        book.remove_friend("bob@example.org")
        assert not book.has_friend("bob@example.org")
        assert book.pending_count() == 0

    def test_default_trust_is_tofu(self):
        book = AddressBook()
        friend = book.upsert_friend("bob@example.org")
        assert friend.trust is TrustLevel.TOFU


def build_request(num_pkgs: int = 2, round_number: int = 4, email: str = "alice@example.org"):
    """Build a verifiable friend request plus the keys needed to check it."""
    signing_private, signing_public = ed25519.generate_keypair()
    pkg_keys = [bls.generate_keypair(seed=bytes([i + 1]) * 32) for i in range(num_pkgs)]
    statement = pkg_statement(email, signing_public, round_number)
    attestations = [bls.sign(kp.secret, statement) for kp in pkg_keys]
    _, dialing_public = x25519.generate_keypair()
    request = FriendRequest.build(
        sender_email=email,
        sender_signing_private=signing_private,
        sender_signing_public=signing_public,
        pkg_attestations=attestations,
        pkg_round=round_number,
        dialing_key=dialing_public,
        dialing_round=9,
    )
    aggregate = bls.aggregate_publics([kp.public for kp in pkg_keys])
    return request, aggregate, signing_public


class TestFriendRequest:
    def test_roundtrip_serialization(self):
        request, _, _ = build_request()
        restored = FriendRequest.from_bytes(request.to_bytes())
        assert restored == request

    def test_wire_size_close_to_paper(self):
        """The paper reports a 244-byte request before IBE; ours is within a
        small margin (field sizes differ slightly by curve encoding)."""
        request, _, _ = build_request()
        assert 220 <= request.wire_size() <= 320

    def test_valid_request_verifies(self):
        request, aggregate, _ = build_request()
        assert request.verify(aggregate)

    def test_verification_binds_pkg_round(self):
        request, aggregate, _ = build_request(round_number=4)
        tampered = FriendRequest.from_bytes(request.to_bytes())
        tampered.pkg_round = 5
        assert not tampered.verify(aggregate)

    def test_wrong_aggregate_rejected(self):
        request, _, _ = build_request(num_pkgs=2)
        rogue = bls.aggregate_publics([bls.generate_keypair().public])
        assert not request.verify(rogue)

    def test_out_of_band_key_match_required_when_supplied(self):
        request, aggregate, signing_public = build_request()
        assert request.verify(aggregate, expected_sender_key=signing_public)
        assert not request.verify(aggregate, expected_sender_key=b"\x07" * 32)

    def test_tampered_dialing_key_rejected(self):
        """Changing the Diffie-Hellman key breaks the sender signature -- the
        protection against a malicious server swapping in its own key."""
        request, aggregate, _ = build_request()
        tampered = FriendRequest.from_bytes(request.to_bytes())
        tampered.dialing_key = b"\x09" * 32
        assert not tampered.verify(aggregate)

    def test_tampered_sender_email_rejected(self):
        request, aggregate, _ = build_request()
        tampered = FriendRequest.from_bytes(request.to_bytes())
        tampered.sender_email = "mallory@example.org"
        assert not tampered.verify(aggregate)

    def test_missing_pkg_signature_rejected(self):
        """An aggregate missing one PKG's signature must not verify: this is
        what makes a single honest PKG sufficient for authentication."""
        email, round_number = "alice@example.org", 4
        signing_private, signing_public = ed25519.generate_keypair()
        pkg_keys = [bls.generate_keypair() for _ in range(3)]
        statement = pkg_statement(email, signing_public, round_number)
        attestations = [bls.sign(kp.secret, statement) for kp in pkg_keys[:2]]  # one missing
        _, dialing_public = x25519.generate_keypair()
        request = FriendRequest.build(
            sender_email=email,
            sender_signing_private=signing_private,
            sender_signing_public=signing_public,
            pkg_attestations=attestations,
            pkg_round=round_number,
            dialing_key=dialing_public,
            dialing_round=1,
        )
        aggregate = bls.aggregate_publics([kp.public for kp in pkg_keys])
        assert not request.verify(aggregate)

    def test_malformed_bytes_rejected(self):
        with pytest.raises(SerializationError):
            FriendRequest.from_bytes(b"\x00\x01\x02")

    def test_sender_statement_is_canonical(self):
        a = sender_statement("Alice@Example.org", b"\x01" * 32, 5)
        b = sender_statement("alice@example.org", b"\x01" * 32, 5)
        assert a == b
        assert a != sender_statement("alice@example.org", b"\x01" * 32, 6)
