"""Tests for the analysis models: sizes, bandwidth, latency, DP accounting."""

from __future__ import annotations

import math

import pytest

from repro.analysis.bandwidth import addfriend_bandwidth, dialing_bandwidth, figure6_series, figure7_series
from repro.analysis.dp import (
    PrivacyAccountant,
    distinguishing_advantage,
    laplace_scale_for_budget,
    noise_floor_delta,
    paper_noise_parameters,
    per_round_epsilon,
    privacy_cost,
)
from repro.analysis.latency import CostModel, LatencyModel, zipf_mailbox_loads
from repro.analysis.sizes import WireSizes


class TestWireSizes:
    def test_paper_request_size(self):
        """§8.2: 244-byte request + 64-byte IBE component = 308 bytes."""
        sizes = WireSizes.paper()
        assert sizes.addfriend_mailbox_entry == 308

    def test_this_implementation_is_larger_but_same_order(self):
        ours = WireSizes.this_implementation()
        paper = WireSizes.paper()
        assert paper.addfriend_mailbox_entry < ours.addfriend_mailbox_entry < 2 * paper.addfriend_mailbox_entry

    def test_mailbox_size_1m_users(self):
        """§8.2: ~24,000 requests at 308 bytes is about 7.4 MB."""
        sizes = WireSizes.paper()
        mb = sizes.addfriend_mailbox_bytes(24_000) / 1e6
        assert 7.0 < mb < 8.0

    def test_dialing_mailbox_uses_48_bits_per_token(self):
        sizes = WireSizes.paper()
        assert abs(sizes.dialing_mailbox_bytes(125_000) - 125_000 * 6) < 100

    def test_scaled_ibe(self):
        sizes = WireSizes.paper().scaled_ibe(4.0)
        assert sizes.ibe_ciphertext_overhead == 256
        assert sizes.friend_request_fields == 244


class TestBandwidthModel:
    def test_figure6_1m_users_mailbox_matches_paper(self):
        point = addfriend_bandwidth(1_000_000, 3600)
        assert 7.0e6 < point.mailbox_bytes < 8.2e6  # paper: ~7.4 MB

    def test_figure7_headline_numbers(self):
        """§8.2: 10M users, 5-minute rounds -> ~3 KB/s, ~7.8 GB/month, 7 mailboxes."""
        point = dialing_bandwidth(10_000_000, 300)
        assert 2.4 < point.kb_per_second < 3.7
        assert 6.2 < point.gb_per_month < 9.5
        assert point.mailbox_count == 7

    def test_figure7_1m_users_bloom_size(self):
        """§8.2: 125,000 tokens encode into a ~0.75 MB Bloom filter."""
        point = dialing_bandwidth(1_000_000, 300)
        assert 0.7e6 < point.mailbox_bytes < 0.85e6

    def test_bandwidth_decreases_with_round_duration(self):
        fast = addfriend_bandwidth(1_000_000, 3600)
        slow = addfriend_bandwidth(1_000_000, 24 * 3600)
        assert slow.kb_per_second < fast.kb_per_second
        assert fast.mailbox_bytes == slow.mailbox_bytes  # same per-round download

    def test_mailbox_size_roughly_constant_in_users(self):
        """§6/§8.2: more users means more mailboxes, not bigger mailboxes."""
        one_m = addfriend_bandwidth(1_000_000, 3600)
        ten_m = addfriend_bandwidth(10_000_000, 3600)
        assert ten_m.mailbox_count > one_m.mailbox_count
        assert ten_m.mailbox_bytes < 1.5 * one_m.mailbox_bytes

    def test_small_population_has_smaller_mailbox(self):
        """§8.2: with 100K users the single mailbox is smaller than 7.4 MB."""
        point = addfriend_bandwidth(100_000, 3600)
        assert point.mailbox_count == 1
        assert point.mailbox_bytes < 7.4e6

    def test_series_helpers_cover_all_points(self):
        fig6 = figure6_series([1, 2, 4], [100_000, 1_000_000])
        assert set(fig6) == {100_000, 1_000_000}
        assert all(len(points) == 3 for points in fig6.values())
        fig7 = figure7_series([1, 5, 10], [1_000_000])
        assert len(fig7[1_000_000]) == 3


class TestLatencyModel:
    def test_headline_points_are_in_the_paper_range(self):
        """Figure 8/9 at 10M users, 3 servers: paper reports 152 s / 118 s."""
        model = LatencyModel()
        addfriend = model.addfriend_latency(10_000_000, 3).total_seconds
        dialing = model.dialing_latency(10_000_000, 3).total_seconds
        assert 90 < addfriend < 230
        assert 70 < dialing < 180
        assert addfriend > dialing

    def test_latency_grows_with_users(self):
        model = LatencyModel()
        values = [model.addfriend_latency(n, 3).total_seconds for n in (10_000, 100_000, 1_000_000, 10_000_000)]
        assert values == sorted(values)
        assert values[-1] > 10 * values[0]

    def test_latency_grows_with_servers(self):
        """Figure 8/9: more servers means more per-hop work and more noise."""
        model = LatencyModel()
        three = model.addfriend_latency(1_000_000, 3).total_seconds
        five = model.addfriend_latency(1_000_000, 5).total_seconds
        ten = model.addfriend_latency(1_000_000, 10).total_seconds
        assert three < five < ten

    def test_skew_keeps_median_flat_but_grows_max(self):
        """Figure 10: median latency is flat in s, max grows, min shrinks."""
        model = LatencyModel()
        flat = model.addfriend_latency_under_skew(1_000_000, 0.0)
        skewed = model.addfriend_latency_under_skew(1_000_000, 2.0)
        assert abs(flat[1] - skewed[1]) / flat[1] < 0.25
        assert skewed[2] > flat[2]
        assert skewed[0] <= flat[0] + 1e-9

    def test_measured_python_costmodel_changes_scale_not_shape(self):
        slow = LatencyModel(costs=CostModel.measured_python(
            ibe_decrypt=0.2, onion_decrypt=3e-4, dialing_hash=3e-6, pkg_extraction=0.02
        ))
        fast = LatencyModel()
        assert slow.addfriend_latency(100_000, 3).total_seconds > fast.addfriend_latency(100_000, 3).total_seconds
        slow_curve = [slow.addfriend_latency(n, 3).total_seconds for n in (10_000, 100_000, 1_000_000)]
        assert slow_curve == sorted(slow_curve)

    def test_zipf_mailbox_loads_sum_and_skew(self):
        uniform = zipf_mailbox_loads(10_000, 4, 0.0)
        skewed = zipf_mailbox_loads(10_000, 4, 2.0)
        assert abs(sum(uniform) - 10_000) < 40
        assert abs(sum(skewed) - 10_000) < 40
        assert max(skewed) - min(skewed) > max(uniform) - min(uniform)

    def test_zipf_loads_reject_bad_mailbox_count(self):
        with pytest.raises(ValueError):
            zipf_mailbox_loads(100, 0, 1.0)


class TestDifferentialPrivacy:
    def test_paper_noise_scales_are_rederived(self):
        """§8.1: b = 406 (add-friend) and b = 2,183 (dialing) for
        (ln 2, 1e-4)-DP over 900 / 26,000 actions.  Our accounting lands
        within ~10% of both."""
        params = paper_noise_parameters()
        assert abs(params["add-friend"]["derived_b"] - 406) / 406 < 0.12
        assert abs(params["dialing"]["derived_b"] - 2_183) / 2_183 < 0.12

    def test_paper_parameters_meet_their_budget(self):
        assert privacy_cost(900, 406).epsilon <= math.log(2) + 0.02
        assert privacy_cost(26_000, 2_183).epsilon <= math.log(2) + 0.02

    def test_scale_for_budget_inverts_cost(self):
        scale = laplace_scale_for_budget(1_000, epsilon=0.5, delta=1e-4)
        assert abs(privacy_cost(1_000, scale, delta=1e-4).epsilon - 0.5) < 0.01

    def test_more_actions_need_more_noise(self):
        assert laplace_scale_for_budget(26_000) > laplace_scale_for_budget(900)

    def test_per_round_epsilon(self):
        assert per_round_epsilon(2.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            per_round_epsilon(0)

    def test_noise_floor_delta_small_at_paper_parameters(self):
        """With mu ~10x b, the probability the noise bottoms out is tiny."""
        assert noise_floor_delta(4_000, 406) < 1e-4
        assert noise_floor_delta(25_000, 2_183) < 1e-4
        assert noise_floor_delta(0, 406) == 0.5

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            privacy_cost(0, 100)
        with pytest.raises(ValueError):
            laplace_scale_for_budget(0)
        with pytest.raises(ValueError):
            privacy_cost(10, 0)
        with pytest.raises(ValueError):
            privacy_cost(-1, 100)
        with pytest.raises(ValueError):
            laplace_scale_for_budget(-5)

    def test_epsilon_monotone_in_actions(self):
        """Property (§8.1 composition): more protected actions always cost
        more epsilon at a fixed noise scale."""
        costs = [privacy_cost(k, 406.0).epsilon for k in (1, 10, 100, 900, 5_000)]
        assert costs == sorted(costs)
        assert all(a < b for a, b in zip(costs, costs[1:]))

    def test_epsilon_decreases_with_noise_scale(self):
        """Property: more noise (bigger b) always buys a smaller epsilon."""
        costs = [privacy_cost(900, b).epsilon for b in (50.0, 100.0, 406.0, 2_000.0)]
        assert costs == sorted(costs, reverse=True)
        assert all(a > b for a, b in zip(costs, costs[1:]))


class TestPrivacyAccountant:
    def test_homogeneous_spend_is_exactly_privacy_cost(self):
        """Bit-for-bit, not approximately: the ledger's live number must be
        the same float the offline analysis produces."""
        accountant = PrivacyAccountant()
        for k in range(1, 8):
            spend = accountant.record(406.0)
            assert spend.epsilon == privacy_cost(k, 406.0).epsilon
        assert accountant.actions == 7
        assert accountant.scales == {406.0: 7}

    def test_batch_record(self):
        one_by_one = PrivacyAccountant()
        for _ in range(5):
            one_by_one.record(100.0)
        batched = PrivacyAccountant()
        batched.record(100.0, actions=5)
        assert batched.spend().epsilon == one_by_one.spend().epsilon

    def test_empty_accountant_has_spent_nothing(self):
        spend = PrivacyAccountant().spend()
        assert spend.epsilon == 0.0
        assert spend.actions == 0

    def test_heterogeneous_scales_compose_conservatively(self):
        """Mixed scales cost at least what the same rounds would cost if
        they had all used the *noisiest* of the scales involved."""
        mixed = PrivacyAccountant()
        mixed.record(406.0, actions=3)
        mixed.record(100.0, actions=2)
        all_noisy = privacy_cost(5, 406.0).epsilon
        assert mixed.spend().epsilon > all_noisy

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            PrivacyAccountant(delta=0)
        with pytest.raises(ValueError):
            PrivacyAccountant(delta=1.0)
        accountant = PrivacyAccountant()
        with pytest.raises(ValueError):
            accountant.record(0)
        with pytest.raises(ValueError):
            accountant.record(406.0, actions=0)


class TestDistinguishingAdvantage:
    def test_zero_epsilon_means_no_advantage(self):
        assert distinguishing_advantage(0.0) == 0.0

    def test_known_value(self):
        e = math.e
        assert distinguishing_advantage(1.0) == pytest.approx((e - 1) / (e + 1))

    def test_monotone_and_bounded(self):
        values = [distinguishing_advantage(eps) for eps in (0.1, 0.5, 1.0, 5.0, 50.0)]
        assert values == sorted(values)
        assert all(0 <= v <= 1 for v in values)

    def test_saturates_at_one_for_huge_epsilon(self):
        assert distinguishing_advantage(1_000.0) == 1.0

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            distinguishing_advantage(-0.1)
