"""Tests for the application integrations (§8.5) and workload generators."""

from __future__ import annotations

import pytest

from repro.apps.pond_panda import MeetingPointServer, PandaExchange, bootstrap_panda_from_call
from repro.apps.vuvuzela import VuvuzelaConversationService, VuvuzelaMessenger
from repro.bench.workloads import WorkloadGenerator, top_k_share, zipf_recipient_weights
from repro.core.config import AlpenhornConfig
from repro.core.coordinator import Deployment
from repro.errors import ProtocolError


@pytest.fixture(scope="module")
def messaging_pair():
    """Alice and Bob, friends via Alpenhorn, each wrapped in a messenger."""
    deployment = Deployment(AlpenhornConfig.for_tests(), seed="vuvuzela-app")
    alice = deployment.create_client("alice@example.org")
    bob = deployment.create_client("bob@example.org")
    service = VuvuzelaConversationService()
    alice_app = VuvuzelaMessenger(alice, service)
    bob_app = VuvuzelaMessenger(bob, service)
    alice_app.addfriend("bob@example.org")
    deployment.run_addfriend_round()
    deployment.run_addfriend_round()
    return deployment, alice_app, bob_app


class TestVuvuzelaIntegration:
    def test_call_bootstraps_conversation_and_messages_flow(self, messaging_pair):
        deployment, alice_app, bob_app = messaging_pair
        placed = deployment.place_call("alice@example.org", "bob@example.org", intent=0)
        conversation = alice_app.adopt_placed_call(placed)
        # Bob's side was opened automatically by the IncomingCall callback.
        assert "alice@example.org" in bob_app.conversations
        assert conversation.session_key == bob_app.conversations["alice@example.org"].session_key

        alice_app.send_message("bob@example.org", "hello from alice")
        bob_app.send_message("alice@example.org", "hi alice, bob here")
        assert bob_app.receive_message("alice@example.org") == "hello from alice"
        assert alice_app.receive_message("bob@example.org") == "hi alice, bob here"

    def test_multiple_exchanges_use_distinct_dead_drops(self, messaging_pair):
        deployment, alice_app, bob_app = messaging_pair
        service_before = alice_app.service.exchange_count()
        alice_app.next_exchange("bob@example.org")
        bob_app.next_exchange("alice@example.org")
        alice_app.send_message("bob@example.org", "second exchange")
        assert bob_app.receive_message("alice@example.org") == "second exchange"
        assert alice_app.service.exchange_count() > service_before

    def test_oversized_message_rejected(self, messaging_pair):
        _, alice_app, _ = messaging_pair
        with pytest.raises(ProtocolError):
            alice_app.send_message("bob@example.org", "x" * 1000)

    def test_message_to_unknown_peer_rejected(self, messaging_pair):
        _, alice_app, _ = messaging_pair
        with pytest.raises(ProtocolError):
            alice_app.send_message("stranger@example.org", "hello?")


class TestPandaIntegration:
    def test_bootstrap_from_matching_session_keys(self):
        key = b"\x11" * 32
        caller, callee = bootstrap_panda_from_call(
            key, key, caller_payload=b"alice-pond-key", callee_payload=b"bob-pond-key"
        )
        assert caller.peer_payload == b"bob-pond-key"
        assert callee.peer_payload == b"alice-pond-key"
        assert caller.pairwise_key == callee.pairwise_key

    def test_mismatched_secrets_fail(self):
        with pytest.raises(ProtocolError):
            bootstrap_panda_from_call(b"\x11" * 32, b"\x22" * 32, b"a", b"b")

    def test_collect_before_peer_posts_returns_none(self):
        server = MeetingPointServer()
        side = PandaExchange("caller", b"\x03" * 32, server)
        side.post_payload(b"material")
        assert side.collect() is None

    def test_short_secret_rejected(self):
        with pytest.raises(ProtocolError):
            PandaExchange("caller", b"short", MeetingPointServer())

    def test_end_to_end_with_real_alpenhorn_call(self):
        """The full §8.5 Pond flow: Alpenhorn call -> PANDA pairing."""
        deployment = Deployment(AlpenhornConfig.for_tests(backend="simulated"), seed="panda")
        deployment.create_client("alice@example.org")
        bob = deployment.create_client("bob@example.org")
        deployment.befriend("alice@example.org", "bob@example.org")
        placed = deployment.place_call("alice@example.org", "bob@example.org")
        received = bob.received_calls()[-1]
        caller, callee = bootstrap_panda_from_call(
            placed.session_key, received.session_key, b"alice-pond", b"bob-pond"
        )
        assert caller.peer_payload == b"bob-pond"
        assert callee.peer_payload == b"alice-pond"


class TestWorkloads:
    def test_zipf_weights_normalised_and_monotone(self):
        weights = zipf_recipient_weights(1000, 1.5)
        assert abs(sum(weights) - 1.0) < 1e-9
        assert weights == sorted(weights, reverse=True)

    def test_uniform_case(self):
        weights = zipf_recipient_weights(100, 0.0)
        assert all(abs(w - 0.01) < 1e-12 for w in weights)

    def test_paper_top10_share_at_s2(self):
        """§8.4: at s = 2 the top 10 users receive 94.2% of requests."""
        generator = WorkloadGenerator(population=100_000, zipf_s=2.0)
        assert 0.91 < generator.top_10_share() < 0.96

    def test_request_mix_is_5_percent_real(self):
        generator = WorkloadGenerator(population=10_000)
        assert generator.real_request_count() == 500
        assert generator.cover_request_count() == 9_500

    def test_mailbox_loads_sum_to_real_requests(self):
        generator = WorkloadGenerator(population=2_000, zipf_s=1.0, seed="loads")
        loads = generator.mailbox_loads(mailbox_count=5)
        assert sum(loads) == generator.real_request_count()
        assert len(loads) == 5

    def test_skewed_loads_are_more_unbalanced(self):
        uniform = WorkloadGenerator(population=5_000, zipf_s=0.0, seed="u").mailbox_loads(8)
        skewed = WorkloadGenerator(population=5_000, zipf_s=2.0, seed="s").mailbox_loads(8)
        assert max(skewed) - min(skewed) > max(uniform) - min(uniform)

    def test_deterministic_given_seed(self):
        a = WorkloadGenerator(population=1_000, zipf_s=1.0, seed="x").sample_recipients(50)
        b = WorkloadGenerator(population=1_000, zipf_s=1.0, seed="x").sample_recipients(50)
        assert a == b

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            zipf_recipient_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_recipient_weights(10, -1.0)

    def test_top_k_share_monotone_in_k(self):
        weights = zipf_recipient_weights(100, 1.0)
        assert top_k_share(weights, 5) < top_k_share(weights, 50)
