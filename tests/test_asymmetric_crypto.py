"""Tests for X25519 and Ed25519, cross-validated against `cryptography`."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import ed25519, x25519
from repro.errors import CryptoError, SignatureError

try:
    from cryptography.hazmat.primitives.asymmetric.ed25519 import Ed25519PrivateKey as OracleEd
    from cryptography.hazmat.primitives.asymmetric.x25519 import X25519PrivateKey as OracleX
    from cryptography.hazmat.primitives import serialization as oracle_ser

    HAVE_ORACLE = True
except Exception:  # pragma: no cover
    HAVE_ORACLE = False


class TestX25519:
    def test_shared_secret_agreement(self):
        alice_priv, alice_pub = x25519.generate_keypair()
        bob_priv, bob_pub = x25519.generate_keypair()
        assert x25519.shared_secret(alice_priv, bob_pub) == x25519.shared_secret(bob_priv, alice_pub)

    def test_different_peers_different_secrets(self):
        alice_priv, _ = x25519.generate_keypair()
        _, bob_pub = x25519.generate_keypair()
        _, carol_pub = x25519.generate_keypair()
        assert x25519.shared_secret(alice_priv, bob_pub) != x25519.shared_secret(alice_priv, carol_pub)

    def test_key_sizes(self):
        priv, pub = x25519.generate_keypair()
        assert len(priv) == 32 and len(pub) == 32

    def test_invalid_lengths_rejected(self):
        with pytest.raises(CryptoError):
            x25519.scalar_mult(b"short", b"\x01" * 32)
        with pytest.raises(CryptoError):
            x25519.scalar_mult(b"\x01" * 32, b"short")

    @pytest.mark.skipif(not HAVE_ORACLE, reason="cryptography oracle unavailable")
    @given(st.binary(min_size=32, max_size=32))
    @settings(max_examples=10, deadline=None)
    def test_public_key_matches_reference(self, seed):
        ours = x25519.public_key(seed)
        oracle = OracleX.from_private_bytes(seed).public_key().public_bytes(
            oracle_ser.Encoding.Raw, oracle_ser.PublicFormat.Raw
        )
        assert ours == oracle

    @pytest.mark.skipif(not HAVE_ORACLE, reason="cryptography oracle unavailable")
    def test_shared_secret_matches_reference(self):
        ours_priv, ours_pub = x25519.generate_keypair()
        oracle_priv = OracleX.generate()
        oracle_pub = oracle_priv.public_key().public_bytes(
            oracle_ser.Encoding.Raw, oracle_ser.PublicFormat.Raw
        )
        from cryptography.hazmat.primitives.asymmetric.x25519 import X25519PublicKey

        theirs = oracle_priv.exchange(X25519PublicKey.from_public_bytes(ours_pub))
        assert x25519.shared_secret(ours_priv, oracle_pub) == theirs


class TestEd25519:
    def test_sign_verify_roundtrip(self):
        priv, pub = ed25519.generate_keypair()
        signature = ed25519.sign(priv, b"hello")
        assert ed25519.verify(pub, b"hello", signature)
        assert not ed25519.verify(pub, b"hellO", signature)

    def test_signature_size(self):
        priv, _ = ed25519.generate_keypair()
        assert len(ed25519.sign(priv, b"m")) == ed25519.SIGNATURE_SIZE

    def test_wrong_key_rejected(self):
        priv, _ = ed25519.generate_keypair()
        _, other_pub = ed25519.generate_keypair()
        assert not ed25519.verify(other_pub, b"m", ed25519.sign(priv, b"m"))

    def test_tampered_signature_rejected(self):
        priv, pub = ed25519.generate_keypair()
        signature = bytearray(ed25519.sign(priv, b"m"))
        signature[10] ^= 0x01
        assert not ed25519.verify(pub, b"m", bytes(signature))

    def test_verify_strict_raises(self):
        priv, pub = ed25519.generate_keypair()
        with pytest.raises(SignatureError):
            ed25519.verify_strict(pub, b"m", b"\x00" * 64)

    def test_malformed_inputs_return_false(self):
        assert not ed25519.verify(b"\x00" * 31, b"m", b"\x00" * 64)
        assert not ed25519.verify(b"\x00" * 32, b"m", b"\x00" * 63)
        assert not ed25519.verify(b"\xff" * 32, b"m", b"\xff" * 64)

    @pytest.mark.skipif(not HAVE_ORACLE, reason="cryptography oracle unavailable")
    @given(st.binary(min_size=32, max_size=32), st.binary(max_size=100))
    @settings(max_examples=10, deadline=None)
    def test_signatures_match_reference(self, seed, message):
        """Ed25519 is deterministic, so signatures must match byte-for-byte."""
        oracle_key = OracleEd.from_private_bytes(seed)
        oracle_pub = oracle_key.public_key().public_bytes(
            oracle_ser.Encoding.Raw, oracle_ser.PublicFormat.Raw
        )
        assert ed25519.public_key(seed) == oracle_pub
        assert ed25519.sign(seed, message) == oracle_key.sign(message)

    @pytest.mark.skipif(not HAVE_ORACLE, reason="cryptography oracle unavailable")
    def test_we_verify_reference_signature(self):
        oracle_key = OracleEd.generate()
        oracle_pub = oracle_key.public_key().public_bytes(
            oracle_ser.Encoding.Raw, oracle_ser.PublicFormat.Raw
        )
        assert ed25519.verify(oracle_pub, b"cross-check", oracle_key.sign(b"cross-check"))
