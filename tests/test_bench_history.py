"""Tests for the bench-history trajectory file and its regression check."""

from __future__ import annotations

import json

from repro.bench.history import (
    append_history,
    check_regressions,
    latest_by_key,
    load_history,
    main,
)


class TestAppendAndLoad:
    def test_append_writes_one_json_line(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        append_history("scenario", "baseline", 1.2345, stats={"clients": 40}, path=path)
        append_history("sweep", "privacy", 9.87, path=path)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["kind"] == "scenario"
        assert first["name"] == "baseline"
        assert first["wall_seconds"] == 1.234  # rounded to ms
        assert first["stats"] == {"clients": 40}
        assert first["git_sha"]
        assert first["recorded_at"]

    def test_load_skips_garbage_lines(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text('{"kind": "scenario", "name": "a", "wall_seconds": 1}\n'
                        "not json\n"
                        "\n"
                        '{"no_name_key": true}\n')
        entries = load_history(path)
        assert len(entries) == 1
        assert entries[0]["name"] == "a"

    def test_load_missing_file_is_empty(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []

    def test_latest_by_key_keeps_the_last_entry(self, tmp_path):
        path = tmp_path / "h.jsonl"
        append_history("scenario", "baseline", 1.0, path=path)
        append_history("scenario", "baseline", 2.0, path=path)
        latest = latest_by_key(load_history(path))
        assert latest[("scenario", "baseline")]["wall_seconds"] == 2.0


class TestRegressionCheck:
    def _histories(self, tmp_path, old_wall, new_wall):
        prev = tmp_path / "prev.jsonl"
        curr = tmp_path / "curr.jsonl"
        append_history("scenario", "baseline", old_wall, path=prev)
        append_history("scenario", "baseline", new_wall, path=curr)
        return prev, curr

    def test_regression_beyond_threshold_warns(self, tmp_path):
        prev, curr = self._histories(tmp_path, 1.0, 1.5)
        warnings = check_regressions(prev, curr)
        assert len(warnings) == 1
        assert "baseline" in warnings[0]

    def test_within_threshold_is_quiet(self, tmp_path):
        prev, curr = self._histories(tmp_path, 1.0, 1.2)
        assert check_regressions(prev, curr) == []

    def test_speedup_is_quiet(self, tmp_path):
        prev, curr = self._histories(tmp_path, 2.0, 1.0)
        assert check_regressions(prev, curr) == []

    def test_new_entries_without_baseline_are_ignored(self, tmp_path):
        prev = tmp_path / "prev.jsonl"
        curr = tmp_path / "curr.jsonl"
        append_history("scenario", "other", 1.0, path=prev)
        append_history("scenario", "baseline", 99.0, path=curr)
        assert check_regressions(prev, curr) == []


class TestCli:
    def test_check_warns_but_exits_zero(self, tmp_path, capsys):
        prev = tmp_path / "prev.jsonl"
        curr = tmp_path / "curr.jsonl"
        append_history("scenario", "baseline", 1.0, path=prev)
        append_history("scenario", "baseline", 2.0, path=curr)
        assert main(["check", str(prev), str(curr)]) == 0
        out = capsys.readouterr().out
        assert "WARNING" in out

    def test_check_missing_previous_exits_zero(self, tmp_path, capsys):
        curr = tmp_path / "curr.jsonl"
        append_history("scenario", "baseline", 1.0, path=curr)
        assert main(["check", str(tmp_path / "absent.jsonl"), str(curr)]) == 0
        assert "nothing to compare" in capsys.readouterr().out

    def test_show_lists_latest_entries(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        append_history("sweep", "privacy", 3.2, path=path)
        assert main(["show", str(path)]) == 0
        assert "privacy" in capsys.readouterr().out
