"""Tests for BLS (multi-)signatures and blind-BLS rate tokens."""

from __future__ import annotations

import pytest

from repro.crypto import blind, bls
from repro.errors import CryptoError, RateLimitError, SignatureError


class TestBls:
    def test_sign_verify_roundtrip(self):
        keypair = bls.generate_keypair()
        signature = bls.sign(keypair.secret, b"message")
        assert bls.verify(keypair.public, b"message", signature)

    def test_wrong_message_rejected(self):
        keypair = bls.generate_keypair()
        signature = bls.sign(keypair.secret, b"message")
        assert not bls.verify(keypair.public, b"other", signature)

    def test_wrong_key_rejected(self):
        keypair = bls.generate_keypair()
        other = bls.generate_keypair()
        signature = bls.sign(keypair.secret, b"message")
        assert not bls.verify(other.public, b"message", signature)

    def test_verify_strict_raises(self):
        keypair = bls.generate_keypair()
        other = bls.generate_keypair()
        signature = bls.sign(keypair.secret, b"message")
        with pytest.raises(SignatureError):
            bls.verify_strict(other.public, b"message", signature)

    def test_seeded_keygen_is_deterministic(self):
        a = bls.generate_keypair(seed=b"\x09" * 32)
        b = bls.generate_keypair(seed=b"\x09" * 32)
        assert a.secret == b.secret and a.public == b.public

    def test_multisignature_same_message(self):
        """The PKGSigs use case: n PKGs sign the same statement, the
        aggregate verifies against the aggregate public key."""
        keypairs = [bls.generate_keypair() for _ in range(3)]
        statement = b"alice@example.org|signing-key|round-42"
        signatures = [bls.sign(kp.secret, statement) for kp in keypairs]
        aggregate_sig = bls.aggregate_signatures(signatures)
        aggregate_pk = bls.aggregate_publics([kp.public for kp in keypairs])
        assert bls.verify(aggregate_pk, statement, aggregate_sig)

    def test_multisignature_fails_if_one_signature_missing(self):
        keypairs = [bls.generate_keypair() for _ in range(3)]
        statement = b"statement"
        signatures = [bls.sign(kp.secret, statement) for kp in keypairs[:2]]
        aggregate_sig = bls.aggregate_signatures(signatures)
        aggregate_pk = bls.aggregate_publics([kp.public for kp in keypairs])
        assert not bls.verify(aggregate_pk, statement, aggregate_sig)

    def test_multisignature_fails_with_forged_member(self):
        keypairs = [bls.generate_keypair() for _ in range(2)]
        statement = b"statement"
        good = bls.sign(keypairs[0].secret, statement)
        forged = bls.sign(bls.generate_keypair().secret, statement)
        aggregate_sig = bls.aggregate_signatures([good, forged])
        aggregate_pk = bls.aggregate_publics([kp.public for kp in keypairs])
        assert not bls.verify(aggregate_pk, statement, aggregate_sig)

    def test_serialization_roundtrip(self):
        keypair = bls.generate_keypair()
        signature = bls.sign(keypair.secret, b"m")
        assert bls.signature_from_bytes(bls.signature_to_bytes(signature)) == signature
        assert bls.public_from_bytes(bls.public_to_bytes(keypair.public)) == keypair.public

    def test_aggregate_rejects_empty(self):
        with pytest.raises(CryptoError):
            bls.aggregate_signatures([])
        with pytest.raises(CryptoError):
            bls.aggregate_publics([])

    def test_sign_rejects_bad_secret(self):
        with pytest.raises(CryptoError):
            bls.sign(0, b"m")


class TestBlindTokens:
    def test_issue_and_verify(self):
        issuer = bls.generate_keypair()
        blinded, state = blind.blind()
        token = blind.unblind(state, blind.issue(issuer.secret, blinded))
        assert blind.verify_token(issuer.public, token)

    def test_issuer_never_sees_token_id(self):
        """The blinded element must not equal (or reveal) H(token_id)."""
        blinded, state = blind.blind()
        assert blinded != bls.hash_message(state.token_id)

    def test_token_from_wrong_issuer_rejected(self):
        issuer = bls.generate_keypair()
        rogue = bls.generate_keypair()
        blinded, state = blind.blind()
        token = blind.unblind(state, blind.issue(rogue.secret, blinded))
        assert not blind.verify_token(issuer.public, token)

    def test_token_serialization_roundtrip(self):
        issuer = bls.generate_keypair()
        blinded, state = blind.blind()
        token = blind.unblind(state, blind.issue(issuer.secret, blinded))
        assert blind.RateToken.from_bytes(token.to_bytes()) == token

    def test_verifier_enforces_single_spend(self):
        issuer = bls.generate_keypair()
        verifier = blind.TokenVerifier(issuer.public)
        blinded, state = blind.blind()
        token = blind.unblind(state, blind.issue(issuer.secret, blinded))
        verifier.spend(token)
        assert verifier.spent_count == 1
        with pytest.raises(RateLimitError):
            verifier.spend(token)

    def test_verifier_rejects_invalid_token(self):
        issuer = bls.generate_keypair()
        verifier = blind.TokenVerifier(issuer.public)
        forged = blind.RateToken(token_id=b"\x01" * 32, signature=bls.hash_message(b"x"))
        with pytest.raises(RateLimitError):
            verifier.spend(forged)

    def test_blind_rejects_bad_token_id(self):
        with pytest.raises(CryptoError):
            blind.blind(token_id=b"short")
