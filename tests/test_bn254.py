"""Tests for the BN254 field tower, curve groups, and pairing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.bn254.curve import (
    G1Point,
    G2Point,
    g1_generator,
    g2_generator,
    hash_to_g1,
)
from repro.crypto.bn254.field import (
    ATE_LOOP_COUNT,
    BN_PARAMETER_T,
    CURVE_ORDER,
    FIELD_MODULUS,
    Fq2,
    Fq6,
    Fq12,
    XI,
    fq_sqrt,
)
from repro.crypto.bn254.pairing import multi_pairing, pairing
from repro.errors import CryptoError

fq2_elements = st.builds(
    Fq2,
    st.integers(min_value=0, max_value=FIELD_MODULUS - 1),
    st.integers(min_value=0, max_value=FIELD_MODULUS - 1),
)

small_scalars = st.integers(min_value=1, max_value=2**64)


class TestParameters:
    def test_bn_polynomials(self):
        """p and r must come from the BN parameterisation of t."""
        t = BN_PARAMETER_T
        assert FIELD_MODULUS == 36 * t**4 + 36 * t**3 + 24 * t**2 + 6 * t + 1
        assert CURVE_ORDER == 36 * t**4 + 36 * t**3 + 18 * t**2 + 6 * t + 1
        assert ATE_LOOP_COUNT == 6 * t + 2

    def test_field_modulus_is_3_mod_4(self):
        assert FIELD_MODULUS % 4 == 3

    def test_curve_order_divides_cyclotomic(self):
        assert (FIELD_MODULUS**4 - FIELD_MODULUS**2 + 1) % CURVE_ORDER == 0

    def test_fq_sqrt(self):
        assert fq_sqrt(4) in (2, FIELD_MODULUS - 2)
        # A non-residue: -1 is a non-residue when p = 3 (mod 4).
        assert fq_sqrt(FIELD_MODULUS - 1) is None


class TestFq2:
    @given(fq2_elements, fq2_elements, fq2_elements)
    @settings(max_examples=30, deadline=None)
    def test_ring_laws(self, a, b, c):
        assert (a + b) * c == a * c + b * c
        assert a * b == b * a
        assert (a * b) * c == a * (b * c)

    @given(fq2_elements)
    @settings(max_examples=30, deadline=None)
    def test_inverse(self, a):
        if a.is_zero():
            with pytest.raises(CryptoError):
                a.inverse()
        else:
            assert a * a.inverse() == Fq2.one()

    @given(fq2_elements)
    @settings(max_examples=30, deadline=None)
    def test_square_matches_mul(self, a):
        assert a.square() == a * a

    def test_nonresidue_multiplication(self):
        a = Fq2(12345, 67890)
        assert a.mul_by_nonresidue() == a * XI

    @given(fq2_elements)
    @settings(max_examples=20, deadline=None)
    def test_sqrt_of_square(self, a):
        root = a.square().sqrt()
        assert root is not None
        assert root.square() == a.square()

    def test_pow_matches_repeated_multiplication(self):
        a = Fq2(3, 5)
        assert a.pow(5) == a * a * a * a * a


class TestFq6Fq12:
    def test_fq6_inverse(self):
        a = Fq6(Fq2(1, 2), Fq2(3, 4), Fq2(5, 6))
        assert a * a.inverse() == Fq6.one()

    def test_fq6_mul_by_v(self):
        a = Fq6(Fq2(1, 2), Fq2(3, 4), Fq2(5, 6))
        v = Fq6(Fq2.zero(), Fq2.one(), Fq2.zero())
        assert a.mul_by_v() == a * v

    def test_fq12_inverse(self):
        a = Fq12(
            Fq6(Fq2(1, 2), Fq2(3, 4), Fq2(5, 6)),
            Fq6(Fq2(7, 8), Fq2(9, 10), Fq2(11, 12)),
        )
        assert a * a.inverse() == Fq12.one()

    def test_fq12_square_matches_mul(self):
        a = Fq12(
            Fq6(Fq2(1, 2), Fq2(3, 4), Fq2(5, 6)),
            Fq6(Fq2(7, 8), Fq2(9, 10), Fq2(11, 12)),
        )
        assert a.square() == a * a

    def test_frobenius_is_p_power(self):
        """x^p computed via Frobenius must equal x.pow(p) (small sanity case)."""
        a = Fq12.from_w_coefficients([Fq2(3, 1), Fq2(0, 2), Fq2(5, 0), Fq2(1, 1), Fq2(2, 7), Fq2(4, 9)])
        assert a.frobenius() == a.pow(FIELD_MODULUS)

    def test_frobenius_order_twelve(self):
        a = Fq12.from_w_coefficients([Fq2(3, 1), Fq2(0, 2), Fq2(5, 0), Fq2(1, 1), Fq2(2, 7), Fq2(4, 9)])
        assert a.frobenius_power(12) == a

    def test_conjugate_is_frobenius_six(self):
        a = Fq12.from_w_coefficients([Fq2(3, 1), Fq2(0, 2), Fq2(5, 0), Fq2(1, 1), Fq2(2, 7), Fq2(4, 9)])
        assert a.conjugate() == a.frobenius_power(6)

    def test_w_coefficient_roundtrip(self):
        coeffs = [Fq2(i, i + 1) for i in range(6)]
        assert Fq12.from_w_coefficients(coeffs).w_coefficients() == coeffs

    def test_to_bytes_length(self):
        assert len(Fq12.one().to_bytes()) == 384


class TestG1:
    def test_generator_on_curve_and_order(self):
        g = g1_generator()
        assert g.is_on_curve()
        assert g.scalar_mul(CURVE_ORDER).is_identity()

    def test_group_laws(self):
        g = g1_generator()
        a, b = g.scalar_mul(17), g.scalar_mul(23)
        assert a + b == b + a
        assert a + G1Point.identity() == a
        assert (a - a).is_identity()
        assert a.double() == a + a

    @given(small_scalars, small_scalars)
    @settings(max_examples=10, deadline=None)
    def test_scalar_mul_homomorphism(self, m, n):
        g = g1_generator()
        assert g.scalar_mul(m) + g.scalar_mul(n) == g.scalar_mul(m + n)

    def test_serialization_roundtrip(self):
        point = g1_generator().scalar_mul(987654321)
        assert G1Point.from_bytes(point.to_bytes()) == point
        assert G1Point.from_bytes(G1Point.identity().to_bytes()).is_identity()

    def test_invalid_point_rejected(self):
        with pytest.raises(CryptoError):
            G1Point.from_bytes(b"\x01" * 64)
        with pytest.raises(CryptoError):
            G1Point.from_bytes(b"\x01" * 63)

    def test_hash_to_g1_deterministic_and_on_curve(self):
        a = hash_to_g1(b"alice@example.org")
        b = hash_to_g1(b"alice@example.org")
        c = hash_to_g1(b"bob@example.org")
        assert a == b
        assert a != c
        assert a.is_on_curve()
        assert a.scalar_mul(CURVE_ORDER).is_identity()

    def test_hash_to_g1_domain_separation(self):
        assert hash_to_g1(b"x", domain=b"d1") != hash_to_g1(b"x", domain=b"d2")


class TestG2:
    def test_generator_on_curve_and_order(self):
        g = g2_generator()
        assert g.is_on_curve()
        assert g.scalar_mul(CURVE_ORDER).is_identity()

    def test_group_laws(self):
        g = g2_generator()
        a, b = g.scalar_mul(5), g.scalar_mul(11)
        assert a + b == b + a
        assert a + G2Point.identity() == a
        assert (a - a).is_identity()
        assert a.double() == a + a

    @given(small_scalars, small_scalars)
    @settings(max_examples=6, deadline=None)
    def test_scalar_mul_homomorphism(self, m, n):
        g = g2_generator()
        assert g.scalar_mul(m) + g.scalar_mul(n) == g.scalar_mul(m + n)

    def test_serialization_roundtrip(self):
        point = g2_generator().scalar_mul(123456789)
        assert G2Point.from_bytes(point.to_bytes()) == point
        assert G2Point.from_bytes(G2Point.identity().to_bytes()).is_identity()

    def test_invalid_point_rejected(self):
        with pytest.raises(CryptoError):
            G2Point.from_bytes(b"\x02" * 128)


class TestPairing:
    def test_bilinearity(self):
        g1, g2 = g1_generator(), g2_generator()
        base = pairing(g1, g2)
        assert pairing(g1.scalar_mul(2), g2.scalar_mul(3)) == base.pow(6)

    def test_linearity_in_first_argument(self):
        g1, g2 = g1_generator(), g2_generator()
        lhs = pairing(g1.scalar_mul(5), g2)
        rhs = pairing(g1, g2).pow(5)
        assert lhs == rhs

    def test_linearity_in_second_argument(self):
        g1, g2 = g1_generator(), g2_generator()
        assert pairing(g1, g2.scalar_mul(7)) == pairing(g1, g2).pow(7)

    def test_non_degenerate_and_order_r(self):
        value = pairing(g1_generator(), g2_generator())
        assert not value.is_one()
        assert value.pow(CURVE_ORDER).is_one()

    def test_identity_inputs_give_one(self):
        assert pairing(G1Point.identity(), g2_generator()).is_one()
        assert pairing(g1_generator(), G2Point.identity()).is_one()

    def test_multi_pairing_product(self):
        g1, g2 = g1_generator(), g2_generator()
        product = multi_pairing([(g1, g2), (g1.scalar_mul(2), g2)])
        assert product == pairing(g1, g2).pow(3)

    def test_multi_pairing_cancellation(self):
        """e(P, Q) * e(-P, Q) == 1 -- the identity used by BLS verification."""
        g1, g2 = g1_generator(), g2_generator()
        assert multi_pairing([(g1, g2), (-g1, g2)]).is_one()

    def test_pairing_rejects_off_curve_points(self):
        bad = G1Point(1, 1)
        with pytest.raises(CryptoError):
            pairing(bad, g2_generator())
