"""End-to-end integration tests of the Alpenhorn client and deployment.

These drive the whole stack -- PKGs, mixnet, entry server, CDN -- through
complete add-friend and dialing rounds.  Most tests use the real pairing
backend with a small deployment; a couple use the simulated backend to
exercise larger populations cheaply.
"""

from __future__ import annotations

import pytest

from repro.core.addressbook import FriendshipState, TrustLevel
from repro.core.config import AlpenhornConfig
from repro.core.coordinator import Deployment
from repro.errors import ProtocolError


@pytest.fixture(scope="module")
def befriended():
    """A deployment where alice and bob are already mutual friends.

    Module-scoped because setting it up costs a handful of pairings; tests
    that mutate state build their own deployments.
    """
    deployment = Deployment(AlpenhornConfig.for_tests(), seed="module-befriended")
    alice = deployment.create_client("alice@example.org")
    bob = deployment.create_client("bob@example.org")
    deployment.befriend("alice@example.org", "bob@example.org")
    return deployment, alice, bob


class TestAddFriendFlow:
    def test_mutual_friendship_and_keywheel_sync(self, befriended):
        deployment, alice, bob = befriended
        assert alice.friends() == ["bob@example.org"]
        assert bob.friends() == ["alice@example.org"]
        wheel_a = alice.keywheel.entry("bob@example.org")
        wheel_b = bob.keywheel.entry("alice@example.org")
        assert wheel_a.secret == wheel_b.secret
        assert wheel_a.round_number == wheel_b.round_number

    def test_tofu_keys_recorded(self, befriended):
        _, alice, bob = befriended
        assert alice.address_book.friend("bob@example.org").signing_key == bob.my_signing_key()
        assert bob.address_book.friend("alice@example.org").signing_key == alice.my_signing_key()
        assert bob.address_book.friend("alice@example.org").trust is TrustLevel.TOFU

    def test_new_friend_callback_saw_request(self, befriended):
        _, _, bob = befriended
        assert ("alice@example.org", pytest.approx) != []
        assert any(email == "alice@example.org" for email, _ in bob.callbacks.friend_requests_seen)

    def test_cover_traffic_sent_when_idle(self, befriended):
        deployment, alice, _ = befriended
        before = alice.stats.cover_friend_requests_sent
        deployment.run_addfriend_round()
        assert alice.stats.cover_friend_requests_sent == before + 1

    def test_every_client_submits_every_round(self, befriended):
        deployment, _, _ = befriended
        summary = deployment.run_addfriend_round()
        assert summary.submissions == len(deployment.clients)

    def test_add_self_rejected(self, befriended):
        _, alice, _ = befriended
        with pytest.raises(ProtocolError):
            alice.add_friend("alice@example.org")

    def test_add_existing_friend_rejected(self, befriended):
        _, alice, _ = befriended
        with pytest.raises(ProtocolError):
            alice.add_friend("bob@example.org")


class TestDialingFlow:
    def test_call_delivers_matching_session_keys(self, befriended):
        deployment, alice, bob = befriended
        placed = deployment.place_call("alice@example.org", "bob@example.org", intent=1)
        assert placed is not None
        received = bob.received_calls()[-1]
        assert received.caller == "alice@example.org"
        assert received.intent == 1
        assert received.session_key == placed.session_key

    def test_call_in_both_directions(self, befriended):
        deployment, alice, bob = befriended
        placed = deployment.place_call("bob@example.org", "alice@example.org", intent=0)
        received = alice.received_calls()[-1]
        assert received.caller == "bob@example.org"
        assert received.session_key == placed.session_key

    def test_session_keys_are_fresh_each_call(self, befriended):
        deployment, alice, bob = befriended
        first = deployment.place_call("alice@example.org", "bob@example.org", intent=0)
        second = deployment.place_call("alice@example.org", "bob@example.org", intent=0)
        assert first.session_key != second.session_key

    def test_call_to_non_friend_rejected(self, befriended):
        _, alice, _ = befriended
        with pytest.raises(ProtocolError):
            alice.call("stranger@example.org")

    def test_invalid_intent_rejected(self, befriended):
        _, alice, _ = befriended
        with pytest.raises(ProtocolError):
            alice.call("bob@example.org", intent=99)

    def test_keywheels_advance_every_round(self, befriended):
        deployment, alice, _ = befriended
        before = alice.keywheel.entry("bob@example.org").round_number
        deployment.run_dialing_round()
        after = alice.keywheel.entry("bob@example.org").round_number
        assert after == max(before, deployment.dialing_round + 1)


class TestDecline:
    def test_declined_request_creates_no_keywheel(self):
        config = AlpenhornConfig.for_tests()
        deployment = Deployment(config, seed="decline")
        deployment.create_client("alice@example.org")
        deployment.create_client("bob@example.org", new_friend=lambda email, key: False)
        deployment.client("alice@example.org").add_friend("bob@example.org")
        deployment.run_addfriend_round()
        deployment.run_addfriend_round()
        alice = deployment.client("alice@example.org")
        bob = deployment.client("bob@example.org")
        assert bob.friends() == []
        assert alice.friends() == []
        assert not bob.keywheel.has_friend("alice@example.org")
        # Bob still remembers that a request arrived.
        assert bob.address_book.friend("alice@example.org").state is FriendshipState.REQUEST_RECEIVED


class TestSimultaneousAdd:
    def test_both_sides_add_in_same_round(self):
        config = AlpenhornConfig.for_tests()
        deployment = Deployment(config, seed="simultaneous")
        alice = deployment.create_client("alice@example.org")
        bob = deployment.create_client("bob@example.org")
        alice.add_friend("bob@example.org")
        bob.add_friend("alice@example.org")
        deployment.run_addfriend_round()
        wheel_a = alice.keywheel.entry("bob@example.org")
        wheel_b = bob.keywheel.entry("alice@example.org")
        assert wheel_a.secret == wheel_b.secret
        assert wheel_a.round_number == wheel_b.round_number


class TestOutOfBandKeys:
    def test_correct_out_of_band_key_verifies(self):
        config = AlpenhornConfig.for_tests()
        deployment = Deployment(config, seed="oob-good")
        alice = deployment.create_client("alice@example.org")
        bob = deployment.create_client("bob@example.org")
        alice.add_friend("bob@example.org", their_signing_key=bob.my_signing_key())
        deployment.run_addfriend_round()
        deployment.run_addfriend_round()
        assert alice.friends() == ["bob@example.org"]
        assert alice.address_book.friend("bob@example.org").trust is TrustLevel.VERIFIED

    def test_wrong_out_of_band_key_blocks_friendship(self):
        """If the key Bob presents does not match what Alice got out-of-band,
        the confirmation is rejected (MITM defence, §3.2)."""
        config = AlpenhornConfig.for_tests()
        deployment = Deployment(config, seed="oob-bad")
        alice = deployment.create_client("alice@example.org")
        deployment.create_client("bob@example.org")
        alice.add_friend("bob@example.org", their_signing_key=b"\x13" * 32)
        deployment.run_addfriend_round()
        deployment.run_addfriend_round()
        assert alice.friends() == []
        assert not alice.keywheel.has_friend("bob@example.org")


class TestForwardSecrecyAcrossTheSystem:
    def test_servers_hold_no_round_secrets_after_rounds_complete(self):
        config = AlpenhornConfig.for_tests()
        deployment = Deployment(config, seed="fs")
        deployment.create_client("alice@example.org")
        deployment.create_client("bob@example.org")
        deployment.client("alice@example.org").add_friend("bob@example.org")
        deployment.run_addfriend_round()
        deployment.run_addfriend_round()
        for round_number in (1, 2):
            assert all(not pkg.has_master_secret(round_number) for pkg in deployment.pkgs)
            assert all(not mix.has_round_key("add-friend", round_number) for mix in deployment.mix_servers)

    def test_clients_hold_no_round_ibe_keys_after_scanning(self):
        config = AlpenhornConfig.for_tests()
        deployment = Deployment(config, seed="fs2")
        alice = deployment.create_client("alice@example.org")
        deployment.create_client("bob@example.org")
        alice.add_friend("bob@example.org")
        deployment.run_addfriend_round()
        assert not alice.addfriend.has_round_keys(1)

    def test_keywheel_state_before_call_is_erased_after(self):
        """An adversary compromising a client after round r learns nothing
        about tokens from rounds < r (the wheel no longer contains them)."""
        config = AlpenhornConfig.for_tests()
        deployment = Deployment(config, seed="fs3")
        alice = deployment.create_client("alice@example.org")
        bob = deployment.create_client("bob@example.org")
        deployment.befriend("alice@example.org", "bob@example.org")
        placed = deployment.place_call("alice@example.org", "bob@example.org")
        call_round = placed.round_number
        # After the round completes, neither wheel can re-derive that round.
        with pytest.raises(ProtocolError):
            alice.keywheel.dial_token("bob@example.org", call_round, 0)
        with pytest.raises(ProtocolError):
            bob.keywheel.dial_token("alice@example.org", call_round, 0)


class TestRemoveAndRecover:
    def test_remove_friend_erases_wheel(self):
        config = AlpenhornConfig.for_tests()
        deployment = Deployment(config, seed="remove")
        alice = deployment.create_client("alice@example.org")
        deployment.create_client("bob@example.org")
        deployment.befriend("alice@example.org", "bob@example.org")
        alice.remove_friend("bob@example.org")
        assert not alice.keywheel.has_friend("bob@example.org")
        assert not alice.address_book.has_friend("bob@example.org")

    def test_compromise_recovery_rotates_key_and_reestablishes(self):
        """§9: deregister with the old key, rotate, re-register, re-add friends."""
        config = AlpenhornConfig.for_tests()
        deployment = Deployment(config, seed="recover")
        alice = deployment.create_client("alice@example.org")
        bob = deployment.create_client("bob@example.org")
        deployment.befriend("alice@example.org", "bob@example.org")
        old_key = alice.my_signing_key()

        alice.recover_from_compromise(deployment.pkgs, deployment.email_network, now=deployment.clock)
        assert alice.my_signing_key() != old_key
        assert alice.friends() == []

        # Deregistration starts the 30-day lockout (§9): immediate
        # re-registration is refused, and succeeds once the window passes.
        from repro.errors import LockoutError
        from repro.pkg.registration import LOCKOUT_SECONDS

        with pytest.raises(LockoutError):
            alice.register(deployment.pkgs, deployment.email_network, now=deployment.clock)
        deployment.advance_clock(LOCKOUT_SECONDS + 1)
        alice.register(deployment.pkgs, deployment.email_network, now=deployment.clock)
        # Bob removes the stale friendship and they re-run add-friend.
        bob.remove_friend("alice@example.org")
        deployment.befriend("alice@example.org", "bob@example.org")
        placed = deployment.place_call("alice@example.org", "bob@example.org")
        assert placed is not None
        assert bob.received_calls()[-1].session_key == placed.session_key


class TestLargerPopulationSimulatedBackend:
    def test_ten_clients_pairwise_calls(self):
        """A larger deployment on the simulated backend: several friendships
        and calls complete, and every round has full cover-traffic
        participation."""
        config = AlpenhornConfig.for_tests(backend="simulated")
        deployment = Deployment(config, seed="population")
        emails = [f"user{i}@example.org" for i in range(10)]
        for email in emails:
            deployment.create_client(email)
        for i in range(0, 10, 2):
            deployment.client(emails[i]).add_friend(emails[i + 1])
        deployment.run_addfriend_round()
        deployment.run_addfriend_round()
        for i in range(0, 10, 2):
            assert deployment.client(emails[i]).friends() == [emails[i + 1]]
        for i in range(0, 10, 2):
            deployment.client(emails[i]).call(emails[i + 1])
        deployment.run_dialing_round()
        deployment.run_dialing_round()
        deployment.run_dialing_round()
        received_total = sum(len(deployment.client(e).received_calls()) for e in emails)
        assert received_total >= 5
