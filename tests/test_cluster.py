"""The sharded entry/CDN tier (repro.cluster).

Covers the shard directory (balanced contiguous ranges, boundary routing,
wire codec), the Zipf mailbox-skew workload generator, end-to-end rounds
through a sharded deployment (including equivalence with the single-shard
tier), ingress envelope batching and its failure/requeue semantics, shared
rate-token enforcement, the unknown-round vs empty-mailbox distinction, the
access-link capacity model, and the dialing redial outbox.
"""

from __future__ import annotations

import pytest

from repro.api.handles import RequestState
from repro.bench.workloads import ZipfMailboxWorkload
from repro.cluster.directory import ShardDirectory, balanced_ranges
from repro.cluster.shard import CdnShard, EntryShard, IngressProxy
from repro.core.config import AlpenhornConfig
from repro.core.coordinator import Deployment
from repro.crypto import blind, bls
from repro.errors import (
    NetworkError,
    RateLimitError,
    RoundError,
    ShardRoutingError,
    UnknownRoundError,
)
from repro.mixnet.mailbox import AddFriendMailbox, MailboxSet, mailbox_for_identity
from repro.mixnet.noise import NoiseConfig
from repro.net import rpc
from repro.net.simulated import SimulatedNetwork
from repro.net.transport import DirectTransport


def email_on_mailbox(mailbox_id: int, mailbox_count: int, tag: str = "u") -> str:
    """Mine an email whose own mailbox is exactly ``mailbox_id``."""
    for n in range(100_000):
        email = f"{tag}{n}@x.org"
        if mailbox_for_identity(email, mailbox_count) == mailbox_id:
            return email
    raise AssertionError("mining failed")  # pragma: no cover


def cluster_config(shards: int = 2, batch: int = 4, fixed_k: int | None = 4, **kwargs):
    return AlpenhornConfig(
        num_mix_servers=2,
        num_pkg_servers=2,
        crypto_backend="simulated",
        noise=NoiseConfig(2, 0, 2, 0),
        addfriend_target_per_mailbox=16,
        dialing_target_per_mailbox=16,
        bloom_false_positive_rate=1e-6,
        num_intents=3,
        entry_shards=shards,
        ingress_batch_size=batch,
        fixed_mailbox_count=fixed_k,
        **kwargs,
    )


class TestShardDirectory:
    def test_balanced_ranges_cover_exactly(self):
        for mailbox_count, shard_count in [(8, 4), (10, 4), (7, 3), (1, 1), (5, 8)]:
            ranges = balanced_ranges(mailbox_count, shard_count)
            assert len(ranges) == shard_count
            assert ranges[0][0] == 0
            assert ranges[-1][1] == mailbox_count
            for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
                assert hi == lo  # contiguous, no gap or overlap
            widths = [hi - lo for lo, hi in ranges]
            assert max(widths) - min(widths) <= 1  # balanced to one mailbox

    def test_every_mailbox_routes_to_exactly_one_shard(self):
        directory = ShardDirectory.build("dialing", 3, 10, 4)
        owners = [directory.shard_for_mailbox(m).index for m in range(10)]
        assert owners == sorted(owners)  # contiguous ranges => monotone
        assert set(owners) == {0, 1, 2, 3}

    def test_range_boundaries_route_to_the_owner(self):
        directory = ShardDirectory.build("add-friend", 1, 8, 2)
        lo_shard, hi_shard = directory.ranges
        assert directory.shard_for_mailbox(lo_shard.hi - 1) is lo_shard
        assert directory.shard_for_mailbox(hi_shard.lo) is hi_shard

    def test_out_of_range_mailbox_is_a_routing_error(self):
        directory = ShardDirectory.build("dialing", 1, 4, 2)
        with pytest.raises(ShardRoutingError):
            directory.shard_for_mailbox(4)
        with pytest.raises(ShardRoutingError):
            directory.shard_for_mailbox(0xFFFFFFFF)  # the cover mailbox

    def test_identity_routing_matches_mailbox_hash(self):
        directory = ShardDirectory.build("dialing", 1, 8, 4)
        email = email_on_mailbox(5, 8)
        assert directory.shard_for_identity(email) is directory.shard_for_mailbox(5)

    def test_empty_ranges_when_fewer_mailboxes_than_shards(self):
        directory = ShardDirectory.build("dialing", 1, 2, 4)
        assert [r.width() for r in directory.ranges] == [1, 1, 0, 0]
        assert directory.shard_for_mailbox(1).index == 1

    def test_wire_codec_round_trips(self):
        directory = ShardDirectory.build("add-friend", 7, 10, 3)
        decoded = ShardDirectory.from_bytes(directory.to_bytes())
        assert decoded == directory

    def test_announce_response_carries_the_directory(self):
        directory = ShardDirectory.build("add-friend", 2, 8, 2)
        payload = rpc.encode_announce_response([b"mixkey"], 8, 640, directory)
        mix, count, body, decoded = rpc.decode_announce_response(payload)
        assert (mix, count, body) == ([b"mixkey"], 8, 640)
        assert decoded == directory
        # And the single-server form still decodes with no directory.
        payload = rpc.encode_announce_response([b"mixkey"], 4, 32)
        assert rpc.decode_announce_response(payload)[3] is None


class TestZipfMailboxWorkload:
    def test_uniform_alpha_uses_plain_emails(self):
        workload = ZipfMailboxWorkload(shard_count=4, mailbox_count=8, alpha=0.0)
        assert workload.email_for(3) == "user3@sim.example.org"

    def test_mined_emails_land_on_the_sampled_shards(self):
        workload = ZipfMailboxWorkload(shard_count=4, mailbox_count=8, alpha=1.5, seed="t")
        emails = [workload.email_for(i) for i in range(40)]
        loads = workload.shard_loads(emails)
        assert sum(loads) == 40
        # Zipf(1.5) concentrates mass on the first-ranked shard.
        assert loads[0] == max(loads)
        assert loads[0] >= 15

    def test_skew_is_deterministic_per_seed(self):
        a = ZipfMailboxWorkload(shard_count=4, mailbox_count=8, alpha=2.0, seed="d")
        b = ZipfMailboxWorkload(shard_count=4, mailbox_count=8, alpha=2.0, seed="d")
        assert [a.email_for(i) for i in range(10)] == [b.email_for(i) for i in range(10)]

    def test_skew_needs_a_mailbox_per_shard(self):
        with pytest.raises(ValueError):
            ZipfMailboxWorkload(shard_count=8, mailbox_count=4, alpha=1.0)


def make_cluster_deployment(clients: int = 8, transport=None, **config_kwargs) -> Deployment:
    deployment = Deployment(
        cluster_config(**config_kwargs), seed="cluster-test", transport=transport
    )
    for i in range(clients):
        deployment.create_client(f"user{i}@x.org")
    return deployment


class TestShardedDeployment:
    def test_default_config_stays_single_shard(self):
        deployment = Deployment(AlpenhornConfig.for_tests(backend="simulated"), seed="t")
        assert deployment.cluster is None
        assert deployment.cdn is not None
        assert "entry" in deployment.transport.endpoints()

    def test_cluster_registers_per_shard_endpoints(self):
        deployment = make_cluster_deployment(clients=0, shards=2)
        endpoints = deployment.transport.endpoints()
        for name in ("entry0", "entry1", "ingress0", "ingress1", "cdn0", "cdn1"):
            assert name in endpoints
        assert "entry" not in endpoints and "cdn" not in endpoints
        assert deployment.cdn is None

    def test_friendship_and_call_across_the_sharded_tier(self):
        deployment = make_cluster_deployment(clients=8, shards=2)
        handle = deployment.session("user0@x.org").add_friend("user1@x.org")
        deployment.run_addfriend_round()
        deployment.run_addfriend_round()
        assert handle.confirmed
        assert deployment.client("user1@x.org").friends() == ["user0@x.org"]
        call = deployment.session("user0@x.org").call("user1@x.org")
        for _ in range(4):
            deployment.run_dialing_round()
        assert call.state is RequestState.DELIVERED
        received = deployment.client("user1@x.org").received_calls()
        assert [c.session_key for c in received] == [call.session_key]

    def test_matches_single_shard_outcomes(self):
        """The same workload forms the same friendships sharded or not."""

        def outcome(shards: int):
            config = cluster_config(shards=shards, fixed_k=4)
            deployment = Deployment(config, seed="equiv")
            for i in range(10):
                deployment.create_client(f"user{i}@x.org")
            handles = [
                deployment.session(f"user{2 * p}@x.org").add_friend(f"user{2 * p + 1}@x.org")
                for p in range(4)
            ]
            deployment.run_addfriend_round()
            deployment.run_addfriend_round()
            return sorted(
                (h.email, h.state.value) for h in handles
            ), sorted(frozenset([c.email] + c.friends()) for c in deployment.clients.values())

        assert outcome(1) == outcome(3)

    def test_submissions_are_counted_across_shards(self):
        deployment = make_cluster_deployment(clients=8, shards=4, fixed_k=8)
        summary = deployment.run_dialing_round()
        assert summary.submissions == 8
        loads = deployment.cluster.load_by_round[("dialing", 1)]
        assert len(loads) == 4
        assert sum(loads) == 8
        expected = [0, 0, 0, 0]
        directory = deployment.cluster.directory("dialing", 1)
        for email in deployment.clients:
            expected[directory.shard_for_identity(email).index] += 1
        assert loads == expected

    def test_fixed_mailbox_count_pins_every_round(self):
        deployment = make_cluster_deployment(clients=6, shards=2, fixed_k=4)
        af = deployment.run_addfriend_round()
        dial = deployment.run_dialing_round()
        assert af.mailbox_count == 4 and dial.mailbox_count == 4

    def test_boundary_mailbox_client_routes_to_its_shard(self):
        deployment = Deployment(cluster_config(shards=2, fixed_k=4), seed="edge")
        # Shard ranges over K=4: shard0 [0,2), shard1 [2,4).  Mine a client
        # whose mailbox sits exactly on the boundary (id 2, shard1's lo).
        email = email_on_mailbox(2, 4, tag="edge")
        deployment.create_client(email)
        deployment.run_dialing_round()
        assert deployment.cluster.load_by_round[("dialing", 1)] == [0, 1]

    def test_wrong_shard_submit_is_a_routing_error(self):
        deployment = make_cluster_deployment(clients=2, shards=2, fixed_k=4)
        deployment.run_addfriend_round()  # allocates round 1 state lazily
        shard0, shard1 = deployment.entry_shard_servers
        directory = ShardDirectory.build("dialing", 99, 4, 2)
        shard0.open_round("dialing", 99, 32, directory)
        misrouted = email_on_mailbox(3, 4, tag="wrong")  # owned by shard1
        with pytest.raises(ShardRoutingError):
            shard0.submit("dialing", 99, misrouted, b"envelope")


class TestIngressBatching:
    def test_batches_amortize_frames(self):
        """Fewer SubmitBatch frames at larger batch sizes, same submissions."""

        def frames(batch: int):
            deployment = make_cluster_deployment(clients=8, shards=2, batch=batch, fixed_k=4)
            summary = deployment.run_dialing_round()
            assert summary.submissions == 8
            return deployment.transport.stats.calls_by_method["submit_batch"]

        assert frames(1) > frames(4)

    def test_lost_batch_rejects_and_requeues(self):
        """A batch the shard never received reports every sender back."""
        transport = DirectTransport()
        proxy = IngressProxy("ingress9", "entry-missing", transport, batch_size=10)
        transport.register(proxy.name, proxy.handle_rpc)
        for n in range(3):
            transport.call(
                f"c{n}",
                proxy.name,
                "submit",
                rpc.encode_submit_request("dialing", 1, f"c{n}", b"env", None),
            )
        rejects = proxy.flush("dialing", 1)
        assert [client for client, _ in rejects] == ["c0", "c1", "c2"]
        assert proxy.flush("dialing", 1) == []  # drained

    def test_unflushed_rounds_expire(self):
        """A round whose flush never arrived must not retain envelopes
        forever: later-round activity expires it."""
        transport = DirectTransport()
        shard = EntryShard("entry0", 0)
        transport.register(shard.name, shard.handle_rpc)
        proxy = IngressProxy("ingress0", shard.name, transport, batch_size=10)
        transport.register(proxy.name, proxy.handle_rpc)
        transport.call(
            "c0", proxy.name, "submit", rpc.encode_submit_request("dialing", 1, "c0", b"env", None)
        )
        assert proxy.buffered("dialing", 1) == 1
        far_ahead = 1 + IngressProxy.RETAINED_ROUNDS + 1
        transport.call(
            "c1",
            proxy.name,
            "submit",
            rpc.encode_submit_request("dialing", far_ahead, "c1", b"env", None),
        )
        assert proxy.buffered("dialing", 1) == 0
        assert proxy.rounds_expired == 1

    def test_entry_shard_expires_unclosed_rounds(self):
        shard = EntryShard("entry0", 0)
        directory = ShardDirectory.build("dialing", 1, 4, 1)
        shard.open_round("dialing", 1, 32, directory)
        far_ahead = 1 + EntryShard.RETAINED_ROUNDS + 1
        shard.open_round(
            "dialing", far_ahead, 32, ShardDirectory.build("dialing", far_ahead, 4, 1)
        )
        assert shard.submissions("dialing", 1) == 0 and shard.rounds_expired == 1

    def test_failed_open_broadcast_tears_down_opened_shards(self):
        """If the open broadcast dies partway, shards that already opened
        the round must still be torn down by the abort."""
        net = SimulatedNetwork(seed="open-fail")
        deployment = Deployment(
            cluster_config(shards=2, fixed_k=4), seed="open-fail", transport=net
        )
        deployment.create_client("a@x.org")
        net.topology.partition("coordinator", "entry1")
        with pytest.raises(NetworkError):
            deployment.run_dialing_round()
        shard0 = deployment.entry_shard_servers[0]
        assert shard0._open_rounds == {}  # opened, then aborted
        net.topology.heal("coordinator", "entry1")
        summary = deployment.run_dialing_round()
        assert not summary.aborted and summary.submissions == 1

    def test_engine_requeues_rejected_submissions(self):
        """A shard partitioned during the submit phase loses only its own
        clients' envelopes; those clients are requeued and confirm after the
        partition heals."""
        net = SimulatedNetwork(seed="partition-test")
        deployment = Deployment(
            cluster_config(shards=2, batch=4, fixed_k=4), seed="partition", transport=net
        )
        # Alice (the sender) lives on shard 1, her friend on shard 0.
        alice = email_on_mailbox(2, 4, tag="a")  # shard1: [2, 4)
        bob = email_on_mailbox(0, 4, tag="b")  # shard0: [0, 2)
        deployment.create_client(alice)
        deployment.create_client(bob)
        handle = deployment.session(alice).add_friend(bob)

        net.topology.partition("ingress1", "entry1")  # submit path only
        summary = deployment.run_addfriend_round()
        assert summary.failures == 1  # alice's envelope died with the batch
        assert summary.submissions == 1  # bob's made it to shard 0
        assert handle.state is RequestState.QUEUED  # revoked, not failed
        assert deployment.client(alice).addfriend.pending_in_queue() == 1

        net.topology.heal("ingress1", "entry1")
        deployment.run_addfriend_round()  # request reaches bob
        deployment.run_addfriend_round()  # bob's confirmation returns
        assert handle.confirmed
        assert handle.attempts == 1  # the revoked attempt was not counted


class TestRateTokensAcrossShards:
    def make_shards(self):
        issuer = bls.generate_keypair(seed=b"\x07" * 32)
        verifier = blind.TokenVerifier(issuer.public)
        shards = [EntryShard(f"entry{i}", i, rate_limit_verifier=verifier) for i in range(2)]
        directory = ShardDirectory.build("dialing", 1, 4, 2)
        for shard in shards:
            shard.open_round("dialing", 1, 32, directory)
        return issuer, shards

    def mint(self, issuer) -> blind.RateToken:
        blinded, state = blind.blind()
        return blind.unblind(state, blind.issue(issuer.secret, blinded))

    def test_token_spent_at_one_shard_is_spent_at_all(self):
        issuer, (shard0, shard1) = self.make_shards()
        token = self.mint(issuer)
        sender0 = email_on_mailbox(0, 4, tag="s0")
        sender1 = email_on_mailbox(2, 4, tag="s1")
        shard0.submit("dialing", 1, sender0, b"env", rate_token=token)
        with pytest.raises(RateLimitError):
            shard1.submit("dialing", 1, sender1, b"env", rate_token=token)
        # A fresh token is accepted at the second shard.
        shard1.submit("dialing", 1, sender1, b"env", rate_token=self.mint(issuer))

    def test_missing_token_rejected_per_shard(self):
        _, (shard0, _) = self.make_shards()
        with pytest.raises(RateLimitError):
            shard0.submit("dialing", 1, email_on_mailbox(0, 4), b"env")


class TestUnknownRoundVsEmptyMailbox:
    def test_cdn_distinguishes_unknown_round_from_empty_mailbox(self):
        from repro.cdn.cdn import Cdn

        cdn = Cdn()
        with pytest.raises(UnknownRoundError):
            cdn.download_blob("add-friend", 1, 0)
        mailboxes = MailboxSet(round_number=1, protocol="add-friend", mailbox_count=4)
        mailboxes.addfriend[0] = AddFriendMailbox(mailbox_id=0, ciphertexts=[b"c"])
        cdn.publish(mailboxes)
        assert cdn.download_blob("add-friend", 1, 1) is None  # empty, known round
        assert cdn.download_blob("add-friend", 1, 0) is not None
        with pytest.raises(UnknownRoundError):
            cdn.mailbox_count("add-friend", 2)
        # UnknownRoundError stays catchable as the legacy RoundError.
        with pytest.raises(RoundError):
            cdn.download_blob("dialing", 1, 0)

    def test_sharded_cdn_stub_matches_single_cdn_error_contract(self):
        """A round the directory no longer resolves raises the same
        UnknownRoundError the single CDN raises for unpublished rounds."""
        deployment = make_cluster_deployment(clients=2, shards=2)
        with pytest.raises(UnknownRoundError):
            deployment.cdn_stub.mailbox_count("dialing", 77)
        with pytest.raises(UnknownRoundError):
            deployment.cdn_stub.download("dialing", 77, 0)

    def test_cdn_shard_rejects_out_of_range_downloads(self):
        shard = CdnShard("cdn0", 0)
        mailboxes = MailboxSet(round_number=3, protocol="add-friend", mailbox_count=8)
        shard.publish_shard(mailboxes, lo=0, hi=4)
        assert shard.download_blob("add-friend", 3, 1) is None  # empty but owned
        with pytest.raises(ShardRoutingError):
            shard.download_blob("add-friend", 3, 5)  # owned by another shard
        with pytest.raises(UnknownRoundError):
            shard.download_blob("add-friend", 4, 1)  # round never published


class TestRevokeSubmission:
    def test_addfriend_revoke_restores_the_queue(self):
        deployment = Deployment(AlpenhornConfig.for_tests(backend="simulated"), seed="rv")
        alice = deployment.create_client("alice@x.org")
        deployment.create_client("bob@x.org")
        alice.add_friend("bob@x.org")
        announcement = deployment.entry.announce_round("add-friend", 1, 4, alice.addfriend.body_length())
        alice.participate_addfriend_round(
            announcement, pkgs=deployment.pkg_stubs, next_dialing_round=2, now=0.0
        )
        alice.addfriend.confirm_sent()  # the optimistic ack
        assert alice.addfriend.pending_in_queue() == 0
        alice.addfriend.revoke_submission()
        assert alice.addfriend.pending_in_queue() == 1
        assert alice.addfriend.queue[0].email == "bob@x.org"
        alice.addfriend.revoke_submission()  # idempotent
        assert alice.addfriend.pending_in_queue() == 1

    def test_dialing_revoke_withdraws_the_placed_call(self):
        from repro.core.dialing import DialingEngine
        from repro.core.dialtoken import OutgoingCall
        from repro.core.keywheel import Keywheel

        wheel = Keywheel()
        wheel.add_friend("bob@x.org", shared_secret=b"\x11" * 32, round_number=1)
        engine = DialingEngine(keywheel=wheel, num_intents=3)
        engine.enqueue(OutgoingCall(friend="bob@x.org", intent=1))
        engine.build_request_payload(round_number=1, mailbox_count=4)
        engine.confirm_sent()
        assert engine.placed_calls and not engine.queue
        engine.revoke_submission()
        assert not engine.placed_calls
        assert [c.intent for c in engine.queue] == [1]
        assert engine._sent_tokens.get(1, set()) == set()


class TestDialingRedial:
    def make_deployment(self, redial: int | None):
        deployment = Deployment(
            AlpenhornConfig.for_tests(backend="simulated"), seed="redial"
        )
        deployment.config.dialing_redial_attempts = redial
        for email in ("alice@x.org", "bob@x.org"):
            deployment.create_client(email)
        deployment.session("alice@x.org").add_friend("bob@x.org")
        deployment.run_addfriend_round()
        deployment.run_addfriend_round()
        return deployment

    def abort_next_round(self, deployment):
        original = deployment.entry_stub.close_round

        def lost_control(protocol, round_number):
            deployment.entry_stub.close_round = original
            raise NetworkError("control plane died")

        deployment.entry_stub.close_round = lost_control

    def drive_until_keywheel_live(self, deployment):
        # The keywheel anchors a couple of dialing rounds ahead; burn cover
        # rounds until a queued call could actually go out.
        for _ in range(4):
            deployment.run_dialing_round()

    def test_aborted_call_is_redialed_and_delivers(self):
        deployment = self.make_deployment(redial=3)
        self.drive_until_keywheel_live(deployment)
        handle = deployment.session("alice@x.org").call("bob@x.org", intent=1)
        self.abort_next_round(deployment)
        with pytest.raises(NetworkError):
            deployment.run_dialing_round()
        assert handle.state is RequestState.QUEUED  # re-dialing, not FAILED
        assert handle.placed is None
        deployment.run_dialing_round()
        assert handle.state is RequestState.DELIVERED
        assert handle.attempts == 2
        assert handle.session_key is not None
        received = deployment.client("bob@x.org").received_calls()
        assert [c.session_key for c in received] == [handle.session_key]
        events = [e.type for e in deployment.session("alice@x.org").events.history()]
        assert "call_retrying" in events

    def test_redial_budget_is_bounded(self):
        deployment = self.make_deployment(redial=2)
        self.drive_until_keywheel_live(deployment)
        handle = deployment.session("alice@x.org").call("bob@x.org")
        for _ in range(2):  # two aborted rounds exhaust attempts 1 and 2
            self.abort_next_round(deployment)
            with pytest.raises(NetworkError):
                deployment.run_dialing_round()
        assert handle.state is RequestState.FAILED
        assert handle.attempts == 2

    def test_redial_dedupes_by_intent(self):
        deployment = self.make_deployment(redial=3)
        self.drive_until_keywheel_live(deployment)
        session = deployment.session("alice@x.org")
        first = session.call("bob@x.org", intent=1)
        self.abort_next_round(deployment)
        with pytest.raises(NetworkError):
            deployment.run_dialing_round()
        assert first.state is RequestState.QUEUED
        second = session.call("bob@x.org", intent=1)  # same intent, still live
        self.abort_next_round(deployment)
        with pytest.raises(NetworkError):
            deployment.run_dialing_round()
        # Whichever dial rode the aborted round fails rather than duplicate
        # the other live handle's intent.
        states = {first.state, second.state}
        assert RequestState.FAILED in states
        assert states != {RequestState.FAILED}

    def test_without_redial_aborts_stay_terminal(self):
        deployment = self.make_deployment(redial=None)
        self.drive_until_keywheel_live(deployment)
        handle = deployment.session("alice@x.org").call("bob@x.org")
        self.abort_next_round(deployment)
        with pytest.raises(NetworkError):
            deployment.run_dialing_round()
        assert handle.state is RequestState.FAILED


class TestAccessLinkModel:
    def test_concurrent_frames_serialize_through_the_access_link(self):
        def phase_span(capped: bool) -> float:
            net = SimulatedNetwork(seed="access")
            net.register("server", lambda request: b"")
            if capped:
                net.set_access_link("server", ingress_mbps=0.001)  # 1 kbit/s
            start = net.now()
            with net.phase() as phase:
                for n in range(4):
                    phase.run(lambda n=n: net.call(f"c{n}", "server", "m", b"x" * 125))
            return net.now() - start

        uncapped = phase_span(capped=False)
        capped = phase_span(capped=True)
        # 4 concurrent 1000-bit frames through 1 kbit/s serialize to ~4s.
        assert capped >= uncapped + 3.9

    def test_uncapped_endpoints_are_unchanged(self):
        net = SimulatedNetwork(seed="access-free")
        net.register("server", lambda request: b"")
        net.call("c", "server", "m", b"payload")
        assert net.now() == 0.0  # perfect default links, no access queue


class TestShardedScenario:
    def test_sharded_entry_scenario_runs_and_reports_loads(self):
        from repro.sim.scenarios import run_scenario

        result = run_scenario(
            "sharded_entry",
            num_clients=12,
            friend_pairs=3,
            addfriend_rounds=2,
            dialing_rounds=1,
            entry_shards=2,
            shard_access_mbps=0.0,
            fixed_mailbox_count=4,
            seed="t-shard",
        )
        assert result.friendships_confirmed >= 3
        assert result.shard_loads["shards"] == 2
        assert sum(result.shard_loads["submissions_by_shard"]) > 0
        assert result.calls_by_method.get("submit_batch", 0) > 0
        assert result.to_dict()["entry_shards"] == 2

    def test_zipf_skew_shows_up_as_imbalance(self):
        from repro.sim.scenarios import run_scenario

        def imbalance(alpha: float) -> float:
            result = run_scenario(
                "sharded_entry",
                num_clients=24,
                friend_pairs=2,
                addfriend_rounds=1,
                dialing_rounds=0,
                entry_shards=4,
                zipf_alpha=alpha,
                shard_access_mbps=0.0,
                fixed_mailbox_count=8,
                seed="t-zipf",
            )
            return result.shard_loads["imbalance"]

        assert imbalance(2.0) > imbalance(0.0)

    def test_pipelined_rounds_compose_with_sharding(self):
        """Round N+1's announce+submit overlapping round N's mix+scan keeps
        per-round shard state (open rounds, ingress buffers, directories)
        correctly keyed."""
        from repro.sim.scenarios import run_scenario

        result = run_scenario(
            "sharded_entry",
            num_clients=12,
            friend_pairs=3,
            addfriend_rounds=3,
            dialing_rounds=4,
            entry_shards=2,
            shard_access_mbps=0.5,
            fixed_mailbox_count=4,
            pipelined=True,
            seed="t-pipe-shard",
        )
        assert not any(r.aborted for r in result.rounds)
        assert result.friendships_confirmed >= 3
        assert result.calls_delivered >= 3

    def test_zipf_without_fixed_mailboxes_is_rejected(self):
        from repro.sim.scenarios import make_scenario

        with pytest.raises(ValueError):
            make_scenario(
                "sharded_entry", entry_shards=2, zipf_alpha=1.0, fixed_mailbox_count=None
            )

    def test_shard_sweep_writes_the_report(self, tmp_path, monkeypatch, capsys):
        from repro.sim.sweep import emit_shard_report, run_shard_sweep

        monkeypatch.setenv("BENCH_RESULTS_DIR", str(tmp_path))
        result = run_shard_sweep(
            shard_counts=[1, 2],
            zipf_alphas=[0.0],
            clients=8,
            access_mbps=0.0,
            batch_sizes=[1],
            addfriend_rounds=1,
            dialing_rounds=0,
            friend_pairs=2,
            seed="t-sweep",
        )
        assert len(result.points) == 2
        assert len(result.batch_points) == 1
        path = emit_shard_report(result)
        assert path.endswith("BENCH_shard.json")
        assert (tmp_path / "BENCH_shard.json").exists()
