"""The pluggable crypto engine: RFC vectors, cross-backend equality, registry.

Three layers of assurance:

* **Official test vectors** -- RFC 8439 (ChaCha20-Poly1305) and RFC 7748
  (X25519) pin every backend to the specifications, not merely to each
  other.
* **Cross-backend equality** -- every *available* backend produces
  byte-identical output on shared inputs (fixed keys/nonces), and fails
  identically on tampered/truncated/misshapen inputs.  This is the property
  that lets ``AlpenhornConfig.crypto_backend`` change the speed of a
  deployment without changing a single wire byte.
* **Registry and batch semantics** -- selection errors, the active-backend
  plumbing, positional ``None`` semantics of the batch APIs, and the
  parallel backend's pool path.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import engine
from repro.crypto.aead import open_sealed, pure_open_sealed, pure_seal, seal
from repro.crypto import x25519
from repro.crypto.chacha20 import chacha20_encrypt
from repro.crypto.engine import (
    ParallelBackend,
    accelerated_available,
    available_backends,
    get_backend,
    use_backend,
)
from repro.errors import ConfigurationError, CryptoError, DecryptionError
from repro.mixnet.onion import OnionKeyPair, unwrap_layer, unwrap_layers, wrap_onion, wrap_onion_many


def backends():
    """Every backend whose dependencies are importable in this environment."""
    return [get_backend(name) for name in available_backends()]


def backend_params():
    return pytest.mark.parametrize("backend", backends(), ids=lambda b: b.name)


# --------------------------------------------------------------------------- #
# RFC 8439 -- ChaCha20-Poly1305
# --------------------------------------------------------------------------- #
RFC8439_KEY = bytes.fromhex(
    "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f"
)
RFC8439_NONCE = bytes.fromhex("070000004041424344454647")
RFC8439_AAD = bytes.fromhex("50515253c0c1c2c3c4c5c6c7")
RFC8439_PLAINTEXT = (
    b"Ladies and Gentlemen of the class of '99: If I could offer you "
    b"only one tip for the future, sunscreen would be it."
)
RFC8439_CIPHERTEXT = bytes.fromhex(
    "d31a8d34648e60db7b86afbc53ef7ec2"
    "a4aded51296e08fea9e2b5a736ee62d6"
    "3dbea45e8ca9671282fafb69da92728b"
    "1a71de0a9e060b2905d6a5b67ecd3b36"
    "92ddbd7f2d778b8c9803aee328091b58"
    "fab324e4fad675945585808b4831d7bc"
    "3ff4def08e4b7a9de576d26586cec64b"
    "6116"
)
RFC8439_TAG = bytes.fromhex("1ae10b594f09e26a7e902ecbd0600691")

# RFC 8439 §2.4.2: the keystream-encryption vector for the bare cipher.
RFC8439_STREAM_KEY = bytes.fromhex(
    "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
)
RFC8439_STREAM_NONCE = bytes.fromhex("000000000000004a00000000")
RFC8439_STREAM_CIPHERTEXT = bytes.fromhex(
    "6e2e359a2568f98041ba0728dd0d6981"
    "e97e7aec1d4360c20a27afccfd9fae0b"
    "f91b65c5524733ab8f593dabcd62b357"
    "1639d624e65152ab8f530c359f0861d8"
    "07ca0dbf500d6a6156a38e088a22b65e"
    "52bc514d16ccf806818ce91ab7793736"
    "5af90bbf74a35be6b40b8eedf2785e42"
    "874d"
)


class TestRfc8439Vectors:
    def test_chacha20_encryption_vector(self):
        """§2.4.2: the bare stream cipher at counter 1."""
        assert (
            chacha20_encrypt(
                RFC8439_STREAM_KEY, RFC8439_STREAM_NONCE, RFC8439_PLAINTEXT, initial_counter=1
            )
            == RFC8439_STREAM_CIPHERTEXT
        )

    @backend_params()
    def test_aead_seal_vector(self, backend):
        """§2.8.2: every backend reproduces the official sealed box exactly."""
        sealed = backend.seal(RFC8439_KEY, RFC8439_PLAINTEXT, RFC8439_AAD, RFC8439_NONCE)
        assert sealed == RFC8439_NONCE + RFC8439_CIPHERTEXT + RFC8439_TAG

    @backend_params()
    def test_aead_open_vector(self, backend):
        sealed = RFC8439_NONCE + RFC8439_CIPHERTEXT + RFC8439_TAG
        assert backend.open_sealed(RFC8439_KEY, sealed, RFC8439_AAD) == RFC8439_PLAINTEXT

    @backend_params()
    def test_aead_vector_tamper_fails(self, backend):
        box = bytearray(RFC8439_NONCE + RFC8439_CIPHERTEXT + RFC8439_TAG)
        box[20] ^= 0x01
        with pytest.raises(DecryptionError):
            backend.open_sealed(RFC8439_KEY, bytes(box), RFC8439_AAD)


# --------------------------------------------------------------------------- #
# RFC 7748 -- X25519
# --------------------------------------------------------------------------- #
RFC7748_VECTORS = [
    (
        "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4",
        "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c",
        "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552",
    ),
    (
        "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d",
        "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493",
        "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957",
    ),
]
RFC7748_ALICE_PRIVATE = bytes.fromhex(
    "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a"
)
RFC7748_ALICE_PUBLIC = bytes.fromhex(
    "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
)
RFC7748_BOB_PRIVATE = bytes.fromhex(
    "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb"
)
RFC7748_BOB_PUBLIC = bytes.fromhex(
    "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
)
RFC7748_SHARED = bytes.fromhex(
    "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
)


class TestRfc7748Vectors:
    @pytest.mark.parametrize("scalar_hex,u_hex,expected_hex", RFC7748_VECTORS)
    @backend_params()
    def test_scalar_mult_vectors(self, backend, scalar_hex, u_hex, expected_hex):
        """§5.2: scalar multiplication on arbitrary points, per backend.

        Backends expose scalar multiplication as ``shared_secret``; the §5.2
        vectors go through it directly (their outputs are not all-zero).
        """
        assert backend.shared_secret(
            bytes.fromhex(scalar_hex), bytes.fromhex(u_hex)
        ) == bytes.fromhex(expected_hex)

    @backend_params()
    def test_diffie_hellman_vector(self, backend):
        """§6.1: public keys from the base point, then the shared secret."""
        assert backend.public_key(RFC7748_ALICE_PRIVATE) == RFC7748_ALICE_PUBLIC
        assert backend.public_key(RFC7748_BOB_PRIVATE) == RFC7748_BOB_PUBLIC
        assert backend.shared_secret(RFC7748_ALICE_PRIVATE, RFC7748_BOB_PUBLIC) == RFC7748_SHARED
        assert backend.shared_secret(RFC7748_BOB_PRIVATE, RFC7748_ALICE_PUBLIC) == RFC7748_SHARED


# --------------------------------------------------------------------------- #
# RFC 8032 -- Ed25519 (the engine signs/verifies SenderSigs too)
# --------------------------------------------------------------------------- #
RFC8032_SECRET = bytes.fromhex(
    "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60"
)
RFC8032_PUBLIC = bytes.fromhex(
    "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a"
)
RFC8032_SIGNATURE = bytes.fromhex(
    "e5564300c360ac729086e2cc806e828a"
    "84877f1eb8e5d974d873e06522490155"
    "5fb8821590a33bacc61e39701cf9b46b"
    "d25bf5f0595bbe24655141438e7a100b"
)


class TestRfc8032Vectors:
    @backend_params()
    def test_sign_vector(self, backend):
        """§7.1 TEST 1: the empty-message signature, per backend."""
        assert backend.ed25519_public_key(RFC8032_SECRET) == RFC8032_PUBLIC
        assert backend.ed25519_sign(RFC8032_SECRET, b"") == RFC8032_SIGNATURE

    @backend_params()
    def test_verify_vector_and_tamper_parity(self, backend):
        assert backend.ed25519_verify(RFC8032_PUBLIC, b"", RFC8032_SIGNATURE)
        assert not backend.ed25519_verify(RFC8032_PUBLIC, b"x", RFC8032_SIGNATURE)
        bad = bytearray(RFC8032_SIGNATURE)
        bad[3] ^= 1
        assert not backend.ed25519_verify(RFC8032_PUBLIC, b"", bytes(bad))
        assert not backend.ed25519_verify(b"short", b"", RFC8032_SIGNATURE)
        assert not backend.ed25519_verify(RFC8032_PUBLIC, b"", b"short")


# --------------------------------------------------------------------------- #
# Cross-backend equality (the byte-identical contract)
# --------------------------------------------------------------------------- #
class TestCrossBackendEquality:
    @given(
        st.binary(max_size=256),
        st.binary(max_size=64),
        st.binary(min_size=32, max_size=32),
        st.binary(min_size=12, max_size=12),
    )
    @settings(max_examples=25, deadline=None)
    def test_seal_identical_bytes(self, message, associated_data, key, nonce):
        boxes = {b.name: b.seal(key, message, associated_data, nonce) for b in backends()}
        assert len(set(boxes.values())) == 1, boxes
        for backend in backends():
            assert backend.open_sealed(key, boxes["pure"], associated_data) == message

    @given(st.binary(min_size=32, max_size=32), st.binary(max_size=128))
    @settings(max_examples=15, deadline=None)
    def test_ed25519_identical_bytes(self, seed, message):
        publics = {b.name: b.ed25519_public_key(seed) for b in backends()}
        assert len(set(publics.values())) == 1, publics
        signatures = {b.name: b.ed25519_sign(seed, message) for b in backends()}
        assert len(set(signatures.values())) == 1, signatures
        for backend in backends():
            assert backend.ed25519_verify(
                publics["pure"], message, signatures["pure"]
            )

    @given(st.binary(min_size=32, max_size=32), st.binary(min_size=32, max_size=32))
    @settings(max_examples=25, deadline=None)
    def test_x25519_identical_bytes(self, private, other_private):
        publics = {b.name: b.public_key(private) for b in backends()}
        assert len(set(publics.values())) == 1, publics
        peer = backends()[0].public_key(other_private)
        secrets = {b.name: b.shared_secret(private, peer) for b in backends()}
        assert len(set(secrets.values())) == 1, secrets

    @backend_params()
    def test_tamper_failure_parity(self, backend):
        """Every backend rejects the same malformed inputs the same way."""
        key = bytes(range(32))
        sealed = pure_seal(key, b"payload", b"aad", bytes(12))
        tampered = bytearray(sealed)
        tampered[-1] ^= 0x80
        with pytest.raises(DecryptionError):
            backend.open_sealed(key, bytes(tampered), b"aad")
        with pytest.raises(DecryptionError):  # wrong associated data
            backend.open_sealed(key, sealed, b"other")
        with pytest.raises(DecryptionError):  # truncated below overhead
            backend.open_sealed(key, sealed[:20], b"aad")
        with pytest.raises(CryptoError):  # misshapen key
            backend.open_sealed(b"short", sealed, b"aad")
        with pytest.raises(CryptoError):  # misshapen nonce on seal
            backend.seal(key, b"x", nonce=b"tiny")
        with pytest.raises(CryptoError):  # misshapen x25519 inputs
            backend.shared_secret(b"short", bytes(32))
        with pytest.raises(CryptoError):
            backend.shared_secret(bytes(range(32)), b"short")
        with pytest.raises(CryptoError):  # the all-zero shared point
            backend.shared_secret(bytes(range(32)), bytes(32))

    def test_onion_wrap_interoperates_across_backends(self):
        """An onion wrapped by any backend peels under any other."""
        keypairs = [OnionKeyPair.generate() for _ in range(2)]
        publics = [kp.public for kp in keypairs]
        for wrapper in backends():
            for peeler in backends():
                envelope = wrap_onion(b"inner payload", publics, engine=wrapper)
                middle = unwrap_layer(envelope, keypairs[0], engine=peeler)
                assert unwrap_layer(middle, keypairs[1], engine=wrapper) == b"inner payload"


# --------------------------------------------------------------------------- #
# Batch semantics
# --------------------------------------------------------------------------- #
class TestBatchApis:
    @backend_params()
    def test_seal_many_matches_singles_for_fixed_nonces(self, backend):
        key = bytes(range(32))
        items = [
            (key, b"message-%d" % i, b"aad", i.to_bytes(12, "big")) for i in range(5)
        ]
        batch = backend.seal_many(items)
        singles = [backend.seal(*item) for item in items]
        assert batch == singles

    @backend_params()
    def test_seal_many_draws_missing_nonces(self, backend):
        key = bytes(range(32))
        boxes = backend.seal_many([(key, b"m", b"", None)] * 3)
        assert len({box[:12] for box in boxes}) == 3  # three distinct nonces

    @backend_params()
    def test_open_many_positional_failures(self, backend):
        key = bytes(range(32))
        good = backend.seal(key, b"ok", b"", bytes(12))
        bad = bytearray(good)
        bad[-1] ^= 1
        results = backend.open_many(
            [(key, good, b""), (key, bytes(bad), b""), (key, b"tiny", b""), (key, good, b"")]
        )
        assert results == [b"ok", None, None, b"ok"]

    @backend_params()
    def test_shared_secret_many_positional_failures(self, backend):
        private = bytes(range(32))
        peer = backend.public_key(bytes(range(1, 33)))
        results = backend.shared_secret_many(
            [(private, peer), (private, bytes(32)), (private, peer)]
        )
        assert results[1] is None
        assert results[0] == results[2] == backend.shared_secret(private, peer)

    def test_unwrap_layers_marks_drops_in_place(self):
        keypair = OnionKeyPair.generate()
        envelopes = wrap_onion_many([b"a", b"b", b"c"], [keypair.public])
        tampered = bytearray(envelopes[1])
        tampered[40] ^= 1
        batch = [envelopes[0], b"malformed", bytes(tampered), envelopes[2]]
        for backend in backends():
            assert unwrap_layers(batch, keypair, backend) == [b"a", None, None, b"c"]

    def test_wrap_onion_many_batches_match_singles_semantically(self):
        keypairs = [OnionKeyPair.generate() for _ in range(3)]
        publics = [kp.public for kp in keypairs]
        payloads = [b"payload-%d" % i for i in range(7)]
        envelopes = wrap_onion_many(payloads, publics)
        assert len({len(e) for e in envelopes}) == 1  # uniform wire size
        peeled = envelopes
        for keypair in keypairs:
            peeled = unwrap_layers(peeled, keypair)
            assert all(item is not None for item in peeled)
        assert peeled == payloads

    def test_wrap_onion_empty_chain_raises(self):
        from repro.errors import MixnetError

        with pytest.raises(MixnetError):
            wrap_onion_many([b"x"], [])
        assert wrap_onion_many([], [OnionKeyPair.generate().public]) == []


class TestParallelBackend:
    def test_pool_path_matches_serial(self):
        """Force the pool (2 workers, min_batch=1) and compare bytes."""
        backend = ParallelBackend(workers=2, min_batch=1)
        try:
            key = bytes(range(32))
            items = [
                (key, b"msg-%d" % i, b"aad", i.to_bytes(12, "big")) for i in range(8)
            ]
            serial = get_backend(backend.inner_name).seal_many(items)
            assert backend.seal_many(items) == serial
            opened = backend.open_many([(key, box, b"aad") for box in serial])
            assert opened == [b"msg-%d" % i for i in range(8)]
            private = bytes(range(32))
            peer = backend.public_key(bytes(range(1, 33)))
            assert backend.shared_secret_many([(private, peer)] * 4) == [
                backend.shared_secret(private, peer)
            ] * 4
        finally:
            backend.close()

    def test_small_batches_skip_the_pool(self):
        backend = ParallelBackend(workers=2, min_batch=64)
        key = bytes(range(32))
        assert backend.seal_many([(key, b"m", b"", bytes(12))]) == [
            backend.seal(key, b"m", b"", bytes(12))
        ]
        assert backend._pool is None  # never spun up
        backend.close()


# --------------------------------------------------------------------------- #
# Registry, selection, and config plumbing
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigurationError):
            get_backend("nonesuch")

    def test_instances_are_singletons(self):
        assert get_backend("pure") is get_backend("pure")

    def test_use_backend_swaps_and_restores(self):
        before = engine.active_backend()
        with use_backend("pure") as active:
            assert engine.active_backend() is active
        assert engine.active_backend() is before

    def test_module_level_aead_follows_active_backend(self):
        key, nonce = bytes(range(32)), bytes(12)
        for name in available_backends():
            with use_backend(name):
                assert seal(key, b"m", b"a", nonce) == pure_seal(key, b"m", b"a", nonce)
                assert open_sealed(key, pure_seal(key, b"m", b"a", nonce), b"a") == b"m"

    def test_x25519_module_functions_stay_pure_reference(self):
        """The primitive module is the spec oracle; it never dispatches."""
        assert x25519.public_key(RFC7748_ALICE_PRIVATE) == RFC7748_ALICE_PUBLIC

    def test_config_selects_engine(self):
        from repro.core.config import AlpenhornConfig

        config = AlpenhornConfig.for_tests()
        assert config.crypto_backend == "pure"
        config.crypto_backend = "parallel"
        config.validate()
        with pytest.raises(ConfigurationError):
            AlpenhornConfig.for_tests().__class__(crypto_backend="nonesuch")

    def test_legacy_crypto_backend_values_migrate_to_ibe(self):
        from repro.core.config import AlpenhornConfig

        with pytest.warns(DeprecationWarning):
            config = AlpenhornConfig(crypto_backend="simulated")
        assert config.ibe_backend == "simulated"
        assert config.crypto_backend == "pure"

    def test_deployment_threads_engine_to_mix_tier(self):
        from repro.core.config import AlpenhornConfig
        from repro.core.coordinator import Deployment

        config = AlpenhornConfig.for_tests(backend="simulated")
        deployment = Deployment(config, seed="engine-registry")
        assert deployment.crypto is get_backend("pure")
        assert all(mix.engine is deployment.crypto for mix in deployment.mix_servers)
        assert engine.active_backend() is deployment.crypto

    @pytest.mark.skipif(not accelerated_available(), reason="cryptography not installed")
    def test_interleaved_deployments_keep_their_own_backend(self):
        """Constructing a second deployment must not hijack the first's engine.

        The active backend is process-wide state; every driving entry point
        (create_client, run_*_round, run_rounds) re-asserts its deployment's
        selection so interleaved deployments each run on their own backend.
        """
        from repro.core.config import AlpenhornConfig
        from repro.core.coordinator import Deployment

        fast_config = AlpenhornConfig.for_tests(backend="simulated")
        fast_config.crypto_backend = "accelerated"
        fast = Deployment(fast_config, seed="interleave-fast")
        # Constructing a second (default: pure) deployment steals the slot...
        pure = Deployment(AlpenhornConfig.for_tests(backend="simulated"), seed="interleave-pure")
        assert engine.active_backend() is pure.crypto
        # ...but driving the first deployment restores its own selection.
        fast.create_client("a@example.org")
        assert engine.active_backend() is get_backend("accelerated")
        fast.create_client("b@example.org")
        handle = fast.session("a@example.org").add_friend("b@example.org")
        fast.run_addfriend_round()
        assert engine.active_backend() is get_backend("accelerated")
        pure.create_client("c@example.org")
        assert engine.active_backend() is get_backend("pure")
        fast.run_addfriend_round()
        assert handle.confirmed
        assert engine.active_backend() is get_backend("accelerated")

    @pytest.mark.skipif(not accelerated_available(), reason="cryptography not installed")
    def test_accelerated_deployment_round_trip(self):
        from repro.core.config import AlpenhornConfig
        from repro.core.coordinator import Deployment

        config = AlpenhornConfig.for_tests(backend="simulated")
        config.crypto_backend = "accelerated"
        deployment = Deployment(config, seed="engine-accelerated")
        deployment.create_client("a@example.org")
        deployment.create_client("b@example.org")
        handle = deployment.session("a@example.org").add_friend("b@example.org")
        deployment.run_addfriend_round()
        deployment.run_addfriend_round()
        assert handle.confirmed
