"""Tests for the email substrate and PKG servers (registration, extraction,
lockout, round lifecycle, commit-reveal coordination)."""

from __future__ import annotations

import pytest

from repro.crypto import bls, ed25519
from repro.crypto.ibe import BonehFranklinIbe, SimulatedIbe
from repro.emailsim.provider import EmailNetwork, EmailProvider
from repro.emailsim.provider import EmailDeliveryError
from repro.errors import ExtractionError, LockoutError, ProtocolError, RegistrationError, RoundError
from repro.pkg.coordinator import PkgCoordinator
from repro.pkg.registration import LOCKOUT_SECONDS, RegistrationManager
from repro.pkg.server import PkgServer, extraction_request_statement, pkg_statement

DAY = 24 * 3600


@pytest.fixture
def network() -> EmailNetwork:
    net = EmailNetwork()
    net.add_provider(EmailProvider(domain="example.org"))
    net.add_provider(EmailProvider(domain="mail.com", compromised=True))
    return net


def make_pkg(network: EmailNetwork, name: str = "pkg0", backend=None) -> PkgServer:
    return PkgServer(
        name=name,
        ibe_backend=backend if backend is not None else SimulatedIbe(),
        email_network=network,
        bls_seed=name.encode().ljust(32, b"\x00"),
    )


def register(pkg: PkgServer, network: EmailNetwork, email: str, signing_pk: bytes, now: float = 0.0):
    pkg.begin_registration(email, signing_pk, now)
    token = network.read_inbox(email)[-1].body
    pkg.confirm_registration(email, token, now)


class TestEmailNetwork:
    def test_delivery_and_inbox(self, network):
        network.send("a@example.org", "b@example.org", "hi", "body")
        inbox = network.read_inbox("b@example.org")
        assert len(inbox) == 1
        assert inbox[0].body == "body"

    def test_unknown_domain_rejected(self, network):
        with pytest.raises(EmailDeliveryError):
            network.send("a@example.org", "b@nowhere.net", "hi", "body")

    def test_malformed_address_rejected(self, network):
        with pytest.raises(EmailDeliveryError):
            network.provider_for("not-an-email")

    def test_ensure_provider_creates_domain(self):
        net = EmailNetwork()
        net.ensure_provider("x@new-domain.io")
        net.send("a@new-domain.io", "x@new-domain.io", "s", "b")
        assert len(net.read_inbox("x@new-domain.io")) == 1

    def test_adversary_access_requires_compromise(self, network):
        network.send("a@example.org", "victim@mail.com", "s", "secret-token")
        compromised = network.provider_for("victim@mail.com")
        assert compromised.adversary_read_inbox("victim@mail.com")[0].body == "secret-token"
        honest = network.provider_for("a@example.org")
        with pytest.raises(EmailDeliveryError):
            honest.adversary_read_inbox("a@example.org")

    def test_wrong_domain_delivery_rejected(self):
        provider = EmailProvider(domain="example.org")
        from repro.emailsim.provider import EmailMessage

        with pytest.raises(EmailDeliveryError):
            provider.deliver(EmailMessage("a@x.com", "b@other.net", "s", "b"))


class TestRegistration:
    def test_register_and_confirm(self, network):
        manager = RegistrationManager(pkg_name="pkg0", email_network=network)
        manager.begin_registration("alice@example.org", b"\x01" * 32, now=0.0)
        token = network.read_inbox("alice@example.org")[-1].body
        record = manager.confirm_registration("alice@example.org", token, now=0.0)
        assert record.signing_key == b"\x01" * 32
        assert manager.is_registered("alice@example.org")

    def test_wrong_token_rejected(self, network):
        manager = RegistrationManager(pkg_name="pkg0", email_network=network)
        manager.begin_registration("alice@example.org", b"\x01" * 32, now=0.0)
        with pytest.raises(RegistrationError):
            manager.confirm_registration("alice@example.org", "bogus", now=0.0)

    def test_confirm_without_begin_rejected(self, network):
        manager = RegistrationManager(pkg_name="pkg0", email_network=network)
        with pytest.raises(RegistrationError):
            manager.confirm_registration("alice@example.org", "token", now=0.0)

    def test_malformed_email_rejected(self, network):
        manager = RegistrationManager(pkg_name="pkg0", email_network=network)
        with pytest.raises(RegistrationError):
            manager.begin_registration("not-an-email", b"\x01" * 32, now=0.0)

    def test_active_account_cannot_be_re_registered(self, network):
        """An attacker controlling the email account cannot steal an account
        that is in active use (§4.6)."""
        manager = RegistrationManager(pkg_name="pkg0", email_network=network)
        manager.begin_registration("alice@example.org", b"\x01" * 32, now=0.0)
        token = network.read_inbox("alice@example.org")[-1].body
        manager.confirm_registration("alice@example.org", token, now=0.0)
        with pytest.raises(LockoutError):
            manager.begin_registration("alice@example.org", b"\x02" * 32, now=10 * DAY)

    def test_lapsed_account_can_be_re_registered(self, network):
        """After 30 days with no key extraction, email confirmation suffices
        again (lost-device recovery)."""
        manager = RegistrationManager(pkg_name="pkg0", email_network=network)
        manager.begin_registration("alice@example.org", b"\x01" * 32, now=0.0)
        token = network.read_inbox("alice@example.org")[-1].body
        manager.confirm_registration("alice@example.org", token, now=0.0)
        manager.begin_registration("alice@example.org", b"\x02" * 32, now=LOCKOUT_SECONDS + 1)
        token = network.read_inbox("alice@example.org")[-1].body
        record = manager.confirm_registration("alice@example.org", token, now=LOCKOUT_SECONDS + 1)
        assert record.signing_key == b"\x02" * 32

    def test_extraction_refreshes_lockout(self, network):
        manager = RegistrationManager(pkg_name="pkg0", email_network=network)
        manager.begin_registration("alice@example.org", b"\x01" * 32, now=0.0)
        token = network.read_inbox("alice@example.org")[-1].body
        manager.confirm_registration("alice@example.org", token, now=0.0)
        manager.record_extraction("alice@example.org", now=20 * DAY)
        # 40 days after registration but only 20 after the last extraction.
        with pytest.raises(LockoutError):
            manager.begin_registration("alice@example.org", b"\x02" * 32, now=40 * DAY)

    def test_deregistration_starts_lockout(self, network):
        manager = RegistrationManager(pkg_name="pkg0", email_network=network)
        manager.begin_registration("alice@example.org", b"\x01" * 32, now=0.0)
        token = network.read_inbox("alice@example.org")[-1].body
        manager.confirm_registration("alice@example.org", token, now=0.0)
        manager.deregister("alice@example.org", now=DAY)
        with pytest.raises(LockoutError):
            manager.begin_registration("alice@example.org", b"\x02" * 32, now=2 * DAY)
        # After the lockout expires the (legitimate) user can re-register.
        manager.begin_registration("alice@example.org", b"\x02" * 32, now=DAY + LOCKOUT_SECONDS + 1)

    def test_idempotent_reregistration_same_key(self, network):
        manager = RegistrationManager(pkg_name="pkg0", email_network=network)
        manager.begin_registration("alice@example.org", b"\x01" * 32, now=0.0)
        token = network.read_inbox("alice@example.org")[-1].body
        manager.confirm_registration("alice@example.org", token, now=0.0)
        manager.begin_registration("alice@example.org", b"\x01" * 32, now=DAY)  # no error


class TestPkgServer:
    def test_extraction_flow(self, network):
        pkg = make_pkg(network)
        seed, signing_pk = ed25519.generate_keypair()
        register(pkg, network, "alice@example.org", signing_pk)
        pkg.open_round(7)
        statement = extraction_request_statement("alice@example.org", 7)
        response = pkg.extract("alice@example.org", 7, ed25519.sign(seed, statement), now=1.0)
        assert response.round_number == 7
        assert response.private_key_share is not None
        assert bls.verify(
            pkg.bls_public_key,
            pkg_statement("alice@example.org", signing_pk, 7),
            response.attestation,
        )

    def test_extraction_requires_registration(self, network):
        pkg = make_pkg(network)
        pkg.open_round(1)
        with pytest.raises(ExtractionError):
            pkg.extract("ghost@example.org", 1, b"\x00" * 64, now=0.0)

    def test_extraction_requires_valid_signature(self, network):
        pkg = make_pkg(network)
        _, signing_pk = ed25519.generate_keypair()
        register(pkg, network, "alice@example.org", signing_pk)
        pkg.open_round(1)
        wrong_seed, _ = ed25519.generate_keypair()
        statement = extraction_request_statement("alice@example.org", 1)
        with pytest.raises(ExtractionError):
            pkg.extract("alice@example.org", 1, ed25519.sign(wrong_seed, statement), now=0.0)

    def test_extraction_requires_open_round(self, network):
        pkg = make_pkg(network)
        seed, signing_pk = ed25519.generate_keypair()
        register(pkg, network, "alice@example.org", signing_pk)
        statement = extraction_request_statement("alice@example.org", 3)
        with pytest.raises(RoundError):
            pkg.extract("alice@example.org", 3, ed25519.sign(seed, statement), now=0.0)

    def test_closed_round_deletes_master_secret(self, network):
        """Forward secrecy: the PKG forgets round master secrets (§4.4)."""
        pkg = make_pkg(network)
        pkg.open_round(5)
        assert pkg.has_master_secret(5)
        pkg.close_round(5)
        assert not pkg.has_master_secret(5)
        with pytest.raises(RoundError):
            pkg.round_public_key(5)
        with pytest.raises(RoundError):
            pkg.open_round(5)  # closed rounds cannot be reopened

    def test_deregister_requires_signature(self, network):
        pkg = make_pkg(network)
        seed, signing_pk = ed25519.generate_keypair()
        register(pkg, network, "alice@example.org", signing_pk)
        with pytest.raises(ExtractionError):
            pkg.deregister("alice@example.org", b"\x00" * 64, now=0.0)
        signature = ed25519.sign(seed, PkgServer.deregistration_statement("alice@example.org"))
        pkg.deregister("alice@example.org", signature, now=0.0)
        pkg.open_round(1)
        statement = extraction_request_statement("alice@example.org", 1)
        with pytest.raises(ExtractionError):
            pkg.extract("alice@example.org", 1, ed25519.sign(seed, statement), now=1.0)

    def test_extraction_count_tracked(self, network):
        pkg = make_pkg(network)
        seed, signing_pk = ed25519.generate_keypair()
        register(pkg, network, "alice@example.org", signing_pk)
        pkg.open_round(1)
        statement = extraction_request_statement("alice@example.org", 1)
        signature = ed25519.sign(seed, statement)
        pkg.extract("alice@example.org", 1, signature, now=0.0)
        pkg.extract("alice@example.org", 1, signature, now=0.0)
        assert pkg.extractions_served == 2


class TestPkgCoordinator:
    def test_commit_reveal_produces_keys_for_all_pkgs(self, network):
        pkgs = [make_pkg(network, f"pkg{i}") for i in range(3)]
        coordinator = PkgCoordinator(pkgs)
        keys = coordinator.open_round(1)
        assert len(keys.public_keys) == 3
        assert len(keys.commitments) == 3
        # Reopening returns the same keys.
        assert coordinator.open_round(1) is keys

    def test_round_keys_requires_open_round(self, network):
        coordinator = PkgCoordinator([make_pkg(network)])
        with pytest.raises(RoundError):
            coordinator.round_keys(9)

    def test_close_round_erases_all_masters(self, network):
        pkgs = [make_pkg(network, f"pkg{i}") for i in range(2)]
        coordinator = PkgCoordinator(pkgs)
        coordinator.open_round(2)
        coordinator.close_round(2)
        assert all(not pkg.has_master_secret(2) for pkg in pkgs)

    def test_empty_coordinator_rejected(self):
        with pytest.raises(ProtocolError):
            PkgCoordinator([])

    def test_real_ibe_backend_end_to_end(self, network):
        """With the pairing backend: keys from all PKGs decrypt an Anytrust
        ciphertext, matching §4.2."""
        from repro.crypto.ibe import AnytrustIbe

        backend = BonehFranklinIbe()
        pkgs = [make_pkg(network, f"pkg{i}", backend=backend) for i in range(2)]
        coordinator = PkgCoordinator(pkgs)
        keys = coordinator.open_round(1)

        scheme = AnytrustIbe(backend)
        ciphertext = scheme.encrypt(keys.public_keys, "bob@example.org", b"hi bob")

        seed, signing_pk = ed25519.generate_keypair()
        for pkg in pkgs:
            register(pkg, network, "bob@example.org", signing_pk)
        statement = extraction_request_statement("bob@example.org", 1)
        shares = [
            pkg.extract("bob@example.org", 1, ed25519.sign(seed, statement), now=0.0).private_key_share
            for pkg in pkgs
        ]
        assert scheme.decrypt(shares, ciphertext) == b"hi bob"
