"""Entry-server round lifecycle, rejection branches, and the §9 rate limit.

These cover the paths the integration tests never hit: submissions against
unopened rounds, duplicate submissions, and the blind-signature rate-token
defence (missing, invalid, double-spent, and valid tokens), both through
direct calls and through the transport RPC path.
"""

from __future__ import annotations

import pytest

from repro.crypto import blind, bls
from repro.entry.server import EntryServer
from repro.errors import NetworkError, RateLimitError, RoundError
from repro.mixnet.chain import MixChain
from repro.mixnet.noise import NoiseConfig
from repro.mixnet.server import MixServer
from repro.net import DirectTransport, EntryStub
from repro.utils.rng import DeterministicRng


def make_entry(rate_limit: bool = False) -> tuple[EntryServer, blind.BlindingState | None]:
    servers = [MixServer(f"mix{i}", rng=DeterministicRng(f"entry-test/{i}")) for i in range(2)]
    chain = MixChain(servers, noise_config=NoiseConfig(0, 0, 0, 0))
    verifier = None
    if rate_limit:
        issuer = bls.generate_keypair(seed=b"\x07" * 32)
        verifier = blind.TokenVerifier(issuer.public)
        entry = EntryServer(chain, rate_limit_verifier=verifier)
        entry._test_issuer = issuer  # stashed for token minting in tests
        return entry, verifier
    return EntryServer(chain, rate_limit_verifier=None), None


def mint_token(entry: EntryServer) -> blind.RateToken:
    issuer = entry._test_issuer
    blinded, state = blind.blind()
    return blind.unblind(state, blind.issue(issuer.secret, blinded))


class TestRoundLifecycle:
    def test_submit_before_announce_raises(self):
        entry, _ = make_entry()
        with pytest.raises(RoundError):
            entry.submit("dialing", 1, "alice", b"envelope")

    def test_close_unopened_round_raises(self):
        entry, _ = make_entry()
        with pytest.raises(RoundError):
            entry.close_round("dialing", 7)

    def test_current_announcement_unopened_raises(self):
        entry, _ = make_entry()
        with pytest.raises(RoundError):
            entry.current_announcement("add-friend", 1)

    def test_announce_is_idempotent(self):
        entry, _ = make_entry()
        first = entry.announce_round("dialing", 1, 4, 32)
        second = entry.announce_round("dialing", 1, 9, 99)  # params ignored
        assert second is first
        assert entry.current_announcement("dialing", 1) is first

    def test_submissions_of_unknown_round_is_zero(self):
        entry, _ = make_entry()
        assert entry.submissions("dialing", 3) == 0

    def test_duplicate_submission_is_dropped(self):
        entry, _ = make_entry()
        entry.announce_round("dialing", 1, 1, 32)
        entry.submit("dialing", 1, "alice", b"first")
        entry.submit("dialing", 1, "alice", b"replayed")
        assert entry.submissions("dialing", 1) == 1

    def test_round_cannot_be_reused_after_close(self):
        entry, _ = make_entry()
        entry.announce_round("dialing", 1, 1, 32)
        entry.close_round("dialing", 1)
        with pytest.raises(RoundError):
            entry.submit("dialing", 1, "alice", b"late")


class TestRateLimit:
    def test_missing_token_rejected(self):
        entry, _ = make_entry(rate_limit=True)
        entry.announce_round("dialing", 1, 1, 32)
        with pytest.raises(RateLimitError):
            entry.submit("dialing", 1, "alice", b"envelope")
        assert entry.submissions("dialing", 1) == 0

    def test_valid_token_accepted_and_spent(self):
        entry, verifier = make_entry(rate_limit=True)
        entry.announce_round("dialing", 1, 1, 32)
        entry.submit("dialing", 1, "alice", b"envelope", rate_token=mint_token(entry))
        assert entry.submissions("dialing", 1) == 1
        assert verifier.spent_count == 1

    def test_double_spend_rejected(self):
        entry, _ = make_entry(rate_limit=True)
        entry.announce_round("dialing", 1, 1, 32)
        token = mint_token(entry)
        entry.submit("dialing", 1, "alice", b"envelope", rate_token=token)
        with pytest.raises(RateLimitError):
            entry.submit("dialing", 1, "bob", b"envelope", rate_token=token)
        assert entry.submissions("dialing", 1) == 1

    def test_token_from_wrong_issuer_rejected(self):
        entry, _ = make_entry(rate_limit=True)
        entry.announce_round("dialing", 1, 1, 32)
        rogue = bls.generate_keypair(seed=b"\x66" * 32)
        blinded, state = blind.blind()
        forged = blind.unblind(state, blind.issue(rogue.secret, blinded))
        with pytest.raises(RateLimitError):
            entry.submit("dialing", 1, "alice", b"envelope", rate_token=forged)

    def test_duplicate_client_does_not_burn_a_token(self):
        """A duplicate submission is dropped *before* token verification, so
        replaying a frame cannot exhaust the client's token budget."""
        entry, verifier = make_entry(rate_limit=True)
        entry.announce_round("dialing", 1, 1, 32)
        entry.submit("dialing", 1, "alice", b"envelope", rate_token=mint_token(entry))
        entry.submit("dialing", 1, "alice", b"replay", rate_token=mint_token(entry))
        assert verifier.spent_count == 1
        assert entry.submissions("dialing", 1) == 1

    def test_duplicate_without_token_is_dropped_not_rejected(self):
        """A replayed frame that lost its token rider is still just a
        duplicate: dropped silently, not a rate-limit rejection (the
        client's original submission already stands)."""
        entry, verifier = make_entry(rate_limit=True)
        entry.announce_round("dialing", 1, 1, 32)
        entry.submit("dialing", 1, "alice", b"envelope", rate_token=mint_token(entry))
        entry.submit("dialing", 1, "alice", b"replay")  # no token, no error
        assert entry.submissions("dialing", 1) == 1
        assert verifier.spent_count == 1


class TestEntryOverTransport:
    """The same branches exercised through framed RPCs."""

    def make_networked_entry(self, rate_limit: bool = False):
        entry, verifier = make_entry(rate_limit=rate_limit)
        transport = DirectTransport()
        transport.register("entry", entry.handle_rpc)
        return entry, EntryStub(transport), verifier

    def test_submit_and_count_over_rpc(self):
        entry, stub, _ = self.make_networked_entry()
        entry.announce_round("dialing", 1, 1, 32)
        stub.submit("dialing", 1, "alice@example.org", b"\x01" * 64)
        assert stub.submissions("dialing", 1) == 1

    def test_rate_token_travels_the_wire(self):
        entry, stub, verifier = self.make_networked_entry(rate_limit=True)
        entry.announce_round("dialing", 1, 1, 32)
        token = mint_token(entry)
        stub.submit("dialing", 1, "alice@example.org", b"\x01" * 64, rate_token=token)
        assert verifier.spent_count == 1
        with pytest.raises(RateLimitError):
            stub.submit("dialing", 1, "bob@example.org", b"\x02" * 64, rate_token=token)

    def test_missing_token_rejected_over_rpc(self):
        entry, stub, _ = self.make_networked_entry(rate_limit=True)
        entry.announce_round("dialing", 1, 1, 32)
        with pytest.raises(RateLimitError):
            stub.submit("dialing", 1, "alice@example.org", b"\x01" * 64)

    def test_duplicate_over_rpc_does_not_burn_token(self):
        """The duplicate-before-token ordering holds on the framed path too."""
        entry, stub, verifier = self.make_networked_entry(rate_limit=True)
        entry.announce_round("dialing", 1, 1, 32)
        stub.submit("dialing", 1, "alice@example.org", b"\x01" * 64, rate_token=mint_token(entry))
        stub.submit("dialing", 1, "alice@example.org", b"\x02" * 64, rate_token=mint_token(entry))
        assert stub.submissions("dialing", 1) == 1
        assert verifier.spent_count == 1

    def test_unknown_method_raises_network_error(self):
        _, stub, _ = self.make_networked_entry()
        with pytest.raises(NetworkError):
            stub.transport.call("x", "entry", "no_such_method")
