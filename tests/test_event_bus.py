"""EventBus semantics: ring-buffer history, filtered queries, unsubscribe."""

from __future__ import annotations

from repro.api.events import EventBus


class TestHistoryRingBuffer:
    def test_history_evicts_oldest_at_max_history(self):
        bus = EventBus(max_history=3)
        for i in range(5):
            bus.emit("tick", round_number=i)
        assert len(bus) == 3
        assert [e.round_number for e in bus.history()] == [2, 3, 4]

    def test_subscribers_still_see_evicted_events(self):
        bus = EventBus(max_history=1)
        seen = []
        bus.subscribe_all(lambda e: seen.append(e.round_number))
        for i in range(4):
            bus.emit("tick", round_number=i)
        assert seen == [0, 1, 2, 3]
        assert len(bus) == 1

    def test_filtered_history_and_last(self):
        bus = EventBus()
        bus.emit("a", round_number=1)
        bus.emit("b", round_number=2)
        bus.emit("a", round_number=3)
        assert [e.round_number for e in bus.history("a")] == [1, 3]
        assert bus.last("a").round_number == 3
        assert bus.last("b").round_number == 2
        assert bus.last("missing") is None
        assert len(bus.history()) == 3


class TestUnsubscribe:
    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        seen = []
        unsubscribe = bus.subscribe("tick", seen.append)
        bus.emit("tick")
        unsubscribe()
        bus.emit("tick")
        assert len(seen) == 1

    def test_unsubscribe_is_idempotent(self):
        bus = EventBus()
        seen = []
        unsubscribe = bus.subscribe("tick", seen.append)
        unsubscribe()
        unsubscribe()  # second call must be a no-op, not an error
        bus.emit("tick")
        assert seen == []

    def test_double_subscribe_keeps_the_other_registration(self):
        bus = EventBus()
        seen = []
        first = bus.subscribe("tick", seen.append)
        bus.subscribe("tick", seen.append)
        bus.emit("tick")
        assert len(seen) == 2  # one delivery per registration
        first()
        bus.emit("tick")
        assert len(seen) == 3  # the second registration survives
        first()  # idempotent even after the list shrank
        bus.emit("tick")
        assert len(seen) == 4

    def test_subscribe_all_unsubscribe_matches_semantics(self):
        bus = EventBus()
        seen = []
        first = bus.subscribe_all(seen.append)
        bus.subscribe_all(seen.append)
        bus.emit("anything")
        assert len(seen) == 2
        first()
        first()
        bus.emit("anything")
        assert len(seen) == 3

    def test_typed_and_all_subscribers_both_fire(self):
        bus = EventBus()
        order = []
        bus.subscribe("tick", lambda e: order.append("typed"))
        bus.subscribe_all(lambda e: order.append("all"))
        bus.emit("tick")
        bus.emit("other")
        assert order == ["typed", "all", "all"]


class TestRegistryTaps:
    def test_add_tap_reaches_existing_and_future_sessions(self):
        from repro.api.session import SessionRegistry

        class _FakeSession:
            def __init__(self) -> None:
                self.events = EventBus()

        registry = SessionRegistry.__new__(SessionRegistry)
        registry._by_email = {}
        registry._taps = []
        existing = _FakeSession()
        registry._by_email["alice@example.org"] = existing

        seen = []
        registry.add_tap(seen.append)
        existing.events.emit("tick", round_number=1)
        assert [e.round_number for e in seen] == [1]
