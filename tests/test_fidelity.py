"""Fidelity-tier equivalence: frames vs slotted vs fluid.

The rebuilt simulator core must be *invisible* at its default tier:
slotted (batched) delivery with columnar frame storage has to produce a
byte-identical :class:`ScenarioResult` to the per-frame simulation.  The
fluid tier trades per-frame fidelity for throughput, so there the tests
bound the divergence instead of demanding identity.
"""

from __future__ import annotations

import json

import pytest

from repro.sim import make_scenario, run_scenario


def comparable(result) -> dict:
    """A result dict with wall-clock noise and tier labels stripped."""
    data = result.to_dict()
    for key in ("wall_seconds", "metrics", "fidelity"):
        data.pop(key, None)
    return data


def run_pair(scenario: str, **overrides):
    frames = run_scenario(scenario, fidelity="frames", **overrides)
    slotted = run_scenario(scenario, fidelity="slotted", **overrides)
    return frames, slotted


class TestSlottedIdentity:
    """Slotted + columnar delivery is byte-identical to per-frame."""

    KW = dict(num_clients=16, friend_pairs=4, addfriend_rounds=2,
              dialing_rounds=2, seed="t-fidelity")

    @pytest.mark.parametrize("scenario", ["baseline", "sharded_entry"])
    def test_byte_identical_results(self, scenario):
        frames, slotted = run_pair(scenario, **self.KW)
        assert json.dumps(comparable(frames), sort_keys=True) == json.dumps(
            comparable(slotted), sort_keys=True
        )

    def test_slotted_is_the_default_tier(self):
        result = run_scenario("baseline", num_clients=8, friend_pairs=2,
                              addfriend_rounds=1, dialing_rounds=1, seed="t-default")
        assert result.to_dict()["fidelity"] == "slotted"

    def test_slotted_actually_batches(self):
        slotted = run_scenario("baseline", fidelity="slotted", **self.KW)
        gauges = slotted.metrics["gauges"]
        assert gauges["scheduler.slotted_items"] > 0
        assert gauges["net.frames_in_flight"] > 1

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ValueError, match="fidelity"):
            run_scenario("baseline", num_clients=8, fidelity="perfect")


class TestFluidApproximation:
    """Fluid links are opt-in and their divergence is bounded."""

    KW = dict(num_clients=16, friend_pairs=4, addfriend_rounds=2,
              dialing_rounds=2, seed="t-fluid")

    def test_deliveries_match_per_frame(self):
        frames = run_scenario("baseline", fidelity="frames", **self.KW)
        fluid = run_scenario("baseline", fidelity="fluid", **self.KW)
        assert fluid.friendships_confirmed == frames.friendships_confirmed
        assert fluid.calls_delivered == frames.calls_delivered
        for before, after in zip(frames.rounds, fluid.rounds):
            assert before.participants == after.participants
            assert before.failures == after.failures

    def test_latency_divergence_bounded(self):
        frames = run_scenario("baseline", fidelity="frames", **self.KW)
        fluid = run_scenario("baseline", fidelity="fluid", **self.KW)
        for before, after in zip(frames.rounds, fluid.rounds):
            if before.latency_s:
                divergence = abs(after.latency_s - before.latency_s) / before.latency_s
                assert divergence < 0.5

    def test_fluid_only_touches_client_links(self):
        scenario = make_scenario("baseline", fidelity="fluid", **self.KW)
        topology = scenario.build_topology()
        assert topology.default.fluid
        # Server-to-server control traffic keeps per-frame fidelity.
        assert not any(link.fluid for link in topology._pair_links.values())


class TestFidelitySweep:
    def test_sweep_proves_identity_and_reports(self, tmp_path, monkeypatch):
        from repro.bench.reporting import results_dir
        from repro.sim.sweep import emit_fidelity_report, run_fidelity_sweep

        monkeypatch.setenv("BENCH_RESULTS_DIR", str(tmp_path))
        result = run_fidelity_sweep(client_counts=[12], friend_pairs=3,
                                    addfriend_rounds=1, dialing_rounds=2,
                                    seed="t-fsweep")
        assert result.slotted_identical()
        assert 0.0 <= result.max_fluid_divergence() < 0.5
        headers, rows = result.table()
        assert len(rows) == 3 and len(headers) == len(rows[0])
        path = emit_fidelity_report(result)
        assert path == str(results_dir() / "BENCH_net.json")
        written = json.loads((tmp_path / "BENCH_net.json").read_text())
        assert written["data"]["slotted_identical"] is True


class TestSimulatedAttestation:
    """The simulation-only attestation oracle: same wire shape as BLS."""

    def test_roundtrip_and_tamper_rejection(self):
        from repro.crypto.attestation import ATTESTATION_SIZE, get_scheme

        scheme = get_scheme("simulated")
        publics = [b"pkg-%d" % i for i in range(3)]
        statement = b"alice@example.org|round 7"
        attestations = [scheme.attest(None, public, statement) for public in publics]
        aggregate = scheme.aggregate(attestations)
        assert len(aggregate) == ATTESTATION_SIZE
        group = scheme.aggregate_publics(publics)
        assert scheme.verify(group, statement, aggregate)
        assert not scheme.verify(group, b"other statement", aggregate)
        assert not scheme.verify(group, statement, bytes(ATTESTATION_SIZE))
        assert not scheme.verify(scheme.aggregate_publics(publics[:2]), statement, aggregate)

    def test_unknown_scheme_rejected(self):
        from repro.errors import ConfigurationError
        from repro.crypto.attestation import get_scheme

        with pytest.raises(ConfigurationError):
            get_scheme("quantum")
