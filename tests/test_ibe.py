"""Tests for the IBE backends: Boneh-Franklin, Anytrust-IBE, and the
simulated oracle backend."""

from __future__ import annotations

import pytest

from repro.crypto.ibe import (
    AnytrustIbe,
    BonehFranklinIbe,
    IbeCiphertext,
    SimulatedIbe,
    SimulatedPkgOracle,
)
from repro.errors import CryptoError


class TestIbeCiphertext:
    def test_roundtrip(self):
        ct = IbeCiphertext(header=b"\x01" * 10, body=b"\x02" * 20)
        assert IbeCiphertext.from_bytes(ct.to_bytes()) == ct
        assert len(ct) == len(ct.to_bytes())

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            IbeCiphertext.from_bytes(b"\x00")
        with pytest.raises(ValueError):
            IbeCiphertext.from_bytes(b"\x00\x10abc")


class TestBonehFranklin:
    def test_encrypt_decrypt_roundtrip(self):
        ibe = BonehFranklinIbe()
        master = ibe.generate_master_keypair()
        ciphertext = ibe.encrypt(master.public, "bob@example.org", b"hello bob")
        private = ibe.extract(master.secret, "bob@example.org")
        assert ibe.decrypt(private, ciphertext) == b"hello bob"

    def test_wrong_identity_cannot_decrypt(self):
        ibe = BonehFranklinIbe()
        master = ibe.generate_master_keypair()
        ciphertext = ibe.encrypt(master.public, "bob@example.org", b"hello bob")
        eve = ibe.extract(master.secret, "eve@example.org")
        assert ibe.decrypt(eve, ciphertext) is None

    def test_wrong_master_cannot_decrypt(self):
        ibe = BonehFranklinIbe()
        master1 = ibe.generate_master_keypair()
        master2 = ibe.generate_master_keypair()
        ciphertext = ibe.encrypt(master1.public, "bob@example.org", b"hello bob")
        private = ibe.extract(master2.secret, "bob@example.org")
        assert ibe.decrypt(private, ciphertext) is None

    def test_deterministic_keygen_from_seed(self):
        ibe = BonehFranklinIbe()
        a = ibe.generate_master_keypair(seed=b"\x05" * 32)
        b = ibe.generate_master_keypair(seed=b"\x05" * 32)
        assert a.secret == b.secret
        assert a.public == b.public

    def test_ciphertext_overhead_matches_constant(self):
        ibe = BonehFranklinIbe()
        master = ibe.generate_master_keypair()
        message = b"x" * 100
        ciphertext = ibe.encrypt(master.public, "bob@example.org", message)
        assert len(ciphertext) == len(message) + ibe.ciphertext_overhead()

    def test_ciphertext_anonymity_header_is_recipient_independent(self):
        """The public header is a random G2 point: same distribution for any
        recipient, and never equal across encryptions (fresh randomness)."""
        ibe = BonehFranklinIbe()
        master = ibe.generate_master_keypair()
        ct_bob = ibe.encrypt(master.public, "bob@example.org", b"m")
        ct_carol = ibe.encrypt(master.public, "carol@example.org", b"m")
        assert ct_bob.header != ct_carol.header
        assert len(ct_bob.header) == len(ct_carol.header)
        ct_bob2 = ibe.encrypt(master.public, "bob@example.org", b"m")
        assert ct_bob.header != ct_bob2.header

    def test_tampered_ciphertext_fails(self):
        ibe = BonehFranklinIbe()
        master = ibe.generate_master_keypair()
        ciphertext = ibe.encrypt(master.public, "bob@example.org", b"hello")
        private = ibe.extract(master.secret, "bob@example.org")
        tampered = IbeCiphertext(
            header=ciphertext.header,
            body=bytes([ciphertext.body[0] ^ 1]) + ciphertext.body[1:],
        )
        assert ibe.decrypt(private, tampered) is None

    def test_garbage_header_returns_none(self):
        ibe = BonehFranklinIbe()
        master = ibe.generate_master_keypair()
        private = ibe.extract(master.secret, "bob@example.org")
        garbage = IbeCiphertext(header=b"\xff" * 128, body=b"\x00" * 64)
        assert ibe.decrypt(private, garbage) is None

    def test_combine_rejects_mismatched_identities(self):
        ibe = BonehFranklinIbe()
        master = ibe.generate_master_keypair()
        a = ibe.extract(master.secret, "a@example.org")
        b = ibe.extract(master.secret, "b@example.org")
        with pytest.raises(CryptoError):
            ibe.combine_private_keys([a, b])

    def test_combine_rejects_empty(self):
        ibe = BonehFranklinIbe()
        with pytest.raises(CryptoError):
            ibe.combine_master_publics([])
        with pytest.raises(CryptoError):
            ibe.combine_private_keys([])


class TestAnytrustIbe:
    def test_roundtrip_with_three_pkgs(self):
        scheme = AnytrustIbe()
        keypairs = scheme.generate_pkg_keypairs(3)
        publics = [kp.public for kp in keypairs]
        ciphertext = scheme.encrypt(publics, "bob@example.org", b"anytrust hello")
        shares = [scheme.extract_share(kp, "bob@example.org") for kp in keypairs]
        assert scheme.decrypt(shares, ciphertext) == b"anytrust hello"

    def test_missing_share_cannot_decrypt(self):
        """Decryption must fail unless *all* per-PKG shares are combined --
        this is exactly why one honest PKG protects the user."""
        scheme = AnytrustIbe()
        keypairs = scheme.generate_pkg_keypairs(3)
        publics = [kp.public for kp in keypairs]
        ciphertext = scheme.encrypt(publics, "bob@example.org", b"secret")
        partial_shares = [scheme.extract_share(kp, "bob@example.org") for kp in keypairs[:2]]
        assert scheme.decrypt(partial_shares, ciphertext) is None

    def test_single_pkg_matches_plain_boneh_franklin(self):
        scheme = AnytrustIbe()
        [keypair] = scheme.generate_pkg_keypairs(1)
        ciphertext = scheme.encrypt([keypair.public], "bob@example.org", b"one pkg")
        share = scheme.extract_share(keypair, "bob@example.org")
        assert scheme.decrypt([share], ciphertext) == b"one pkg"

    def test_ciphertext_size_independent_of_pkg_count(self):
        """The efficiency property of Anytrust-IBE over onion encryption."""
        scheme = AnytrustIbe()
        message = b"y" * 64
        sizes = []
        for count in (1, 3, 5):
            keypairs = scheme.generate_pkg_keypairs(count)
            ciphertext = scheme.encrypt([kp.public for kp in keypairs], "bob@x.org", message)
            sizes.append(len(ciphertext))
        assert len(set(sizes)) == 1

    def test_deterministic_seeded_pkgs(self):
        scheme = AnytrustIbe()
        seeds = [bytes([i]) * 32 for i in range(1, 4)]
        a = scheme.generate_pkg_keypairs(3, seeds=seeds)
        b = scheme.generate_pkg_keypairs(3, seeds=seeds)
        assert [kp.secret for kp in a] == [kp.secret for kp in b]

    def test_rejects_bad_parameters(self):
        scheme = AnytrustIbe()
        with pytest.raises(CryptoError):
            scheme.generate_pkg_keypairs(0)
        with pytest.raises(CryptoError):
            scheme.generate_pkg_keypairs(2, seeds=[b"\x00" * 32])


class TestSimulatedIbe:
    def test_roundtrip(self):
        scheme = SimulatedIbe()
        keypairs = [scheme.generate_master_keypair() for _ in range(3)]
        aggregate = scheme.combine_master_publics([kp.public for kp in keypairs])
        ciphertext = scheme.encrypt(aggregate, "bob@example.org", b"sim hello")
        shares = [scheme.extract(kp.secret, "bob@example.org") for kp in keypairs]
        private = scheme.combine_private_keys(shares)
        assert scheme.decrypt(private, ciphertext) == b"sim hello"

    def test_wrong_identity_cannot_decrypt(self):
        scheme = SimulatedIbe()
        keypair = scheme.generate_master_keypair()
        ciphertext = scheme.encrypt(keypair.public, "bob@example.org", b"m")
        eve = scheme.extract(keypair.secret, "eve@example.org")
        assert scheme.decrypt(eve, ciphertext) is None

    def test_oracle_shared_between_instances(self):
        oracle = SimulatedPkgOracle()
        pkg_side = SimulatedIbe(oracle)
        client_side = SimulatedIbe(oracle)
        keypair = pkg_side.generate_master_keypair()
        ciphertext = client_side.encrypt(keypair.public, "bob@example.org", b"m")
        private = pkg_side.extract(keypair.secret, "bob@example.org")
        assert client_side.decrypt(private, ciphertext) == b"m"

    def test_unknown_handle_rejected(self):
        scheme = SimulatedIbe()
        with pytest.raises(CryptoError):
            scheme.encrypt(b"\xaa" * 32, "bob@example.org", b"m")

    def test_interface_parity_with_real_backend(self):
        """Both backends expose identical interface surface used by the client."""
        real, simulated = BonehFranklinIbe(), SimulatedIbe()
        for method in ("generate_master_keypair", "extract", "encrypt", "decrypt",
                       "combine_master_publics", "combine_private_keys",
                       "master_public_to_bytes", "ciphertext_overhead"):
            assert hasattr(real, method)
            assert hasattr(simulated, method)
