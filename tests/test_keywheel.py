"""Tests for the keywheel construction (Figure 4 / Figure 5 / §5.1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.keywheel import Keywheel
from repro.errors import ProtocolError


def make_pair(anchor_round: int = 5) -> tuple[Keywheel, Keywheel]:
    """Two wheels anchored from the same shared secret, as after add-friend."""
    shared = b"\x42" * 32
    alice, bob = Keywheel(), Keywheel()
    alice.add_friend("bob@example.org", shared, anchor_round)
    bob.add_friend("alice@example.org", shared, anchor_round)
    return alice, bob


class TestKeywheelBasics:
    def test_add_and_query_friend(self):
        wheel = Keywheel()
        wheel.add_friend("Bob@Example.org", b"\x01" * 32, 3)
        assert wheel.has_friend("bob@example.org")
        assert wheel.friends() == ["bob@example.org"]
        assert wheel.entry("bob@example.org").round_number == 3

    def test_short_secret_rejected(self):
        wheel = Keywheel()
        with pytest.raises(ProtocolError):
            wheel.add_friend("bob@example.org", b"short", 0)

    def test_unknown_friend_rejected(self):
        wheel = Keywheel()
        with pytest.raises(ProtocolError):
            wheel.entry("ghost@example.org")
        with pytest.raises(ProtocolError):
            wheel.dial_token("ghost@example.org", 1, 0)

    def test_remove_friend_erases_entry(self):
        wheel = Keywheel()
        wheel.add_friend("bob@example.org", b"\x01" * 32, 3)
        wheel.remove_friend("bob@example.org")
        assert not wheel.has_friend("bob@example.org")
        assert len(wheel) == 0


class TestSynchronisation:
    def test_same_secret_same_tokens(self):
        """Two friends derive identical dial tokens and session keys at any
        round at or after the anchor."""
        alice, bob = make_pair(anchor_round=5)
        for round_number in (5, 6, 10, 42):
            for intent in (0, 1, 2):
                assert alice.dial_token("bob@example.org", round_number, intent) == bob.dial_token(
                    "alice@example.org", round_number, intent
                )
                assert alice.session_key("bob@example.org", round_number, intent) == bob.session_key(
                    "alice@example.org", round_number, intent
                )

    def test_sync_preserved_when_one_side_advances_lazily(self):
        """One side advancing round-by-round matches the other deriving ahead."""
        alice, bob = make_pair(anchor_round=0)
        alice.advance_to(7)
        assert alice.dial_token("bob@example.org", 7, 0) == bob.dial_token("alice@example.org", 7, 0)

    @given(st.integers(min_value=0, max_value=30), st.integers(min_value=0, max_value=9))
    @settings(max_examples=25, deadline=None)
    def test_sync_property(self, extra_rounds, intent):
        alice, bob = make_pair(anchor_round=3)
        round_number = 3 + extra_rounds
        bob.advance_to(round_number)
        assert alice.dial_token("bob@example.org", round_number, intent) == bob.dial_token(
            "alice@example.org", round_number, intent
        )


class TestForwardSecrecy:
    def test_advance_erases_old_secrets(self):
        """After advancing, the wheel cannot produce tokens for past rounds --
        that state no longer exists on the client."""
        wheel = Keywheel()
        wheel.add_friend("bob@example.org", b"\x01" * 32, 0)
        token_before = wheel.dial_token("bob@example.org", 0, 0)
        wheel.advance_to(5)
        with pytest.raises(ProtocolError):
            wheel.dial_token("bob@example.org", 0, 0)
        # And the secret itself has changed.
        assert wheel.entry("bob@example.org").secret != token_before

    def test_advance_is_one_way(self):
        """The advanced secret does not reveal the previous secret: advancing
        twice from the same point matches, but no inverse exists (we check the
        secrets differ and evolve deterministically)."""
        a, b = Keywheel(), Keywheel()
        a.add_friend("x@example.org", b"\x05" * 32, 0)
        b.add_friend("x@example.org", b"\x05" * 32, 0)
        a.advance_to(10)
        b.advance_to(10)
        assert a.entry("x@example.org").secret == b.entry("x@example.org").secret
        b.advance_to(11)
        assert a.entry("x@example.org").secret != b.entry("x@example.org").secret

    def test_advance_never_moves_backwards(self):
        wheel = Keywheel()
        wheel.add_friend("bob@example.org", b"\x01" * 32, 10)
        wheel.advance_to(4)  # no-op: entry is anchored later
        assert wheel.entry("bob@example.org").round_number == 10

    def test_future_anchored_entry_untouched(self):
        """Figure 5: an entry anchored at a future round stays put while the
        rest of the table advances."""
        wheel = Keywheel()
        wheel.add_friend("bob@example.org", b"\x01" * 32, 25)
        wheel.add_friend("chris@example.org", b"\x02" * 32, 28)
        wheel.advance_to(26)
        assert wheel.entry("bob@example.org").round_number == 26
        assert wheel.entry("chris@example.org").round_number == 28

    def test_snapshot_is_a_copy(self):
        wheel = Keywheel()
        wheel.add_friend("bob@example.org", b"\x01" * 32, 0)
        snap = wheel.snapshot()
        wheel.advance_to(3)
        assert snap["bob@example.org"].round_number == 0
        assert wheel.entry("bob@example.org").round_number == 3


class TestDerivations:
    def test_token_and_session_key_differ(self):
        wheel = Keywheel()
        wheel.add_friend("bob@example.org", b"\x01" * 32, 0)
        assert wheel.dial_token("bob@example.org", 0, 0) != wheel.session_key("bob@example.org", 0, 0)

    def test_tokens_differ_by_intent_round_friend(self):
        wheel = Keywheel()
        wheel.add_friend("bob@example.org", b"\x01" * 32, 0)
        wheel.add_friend("carol@example.org", b"\x02" * 32, 0)
        tokens = {
            wheel.dial_token("bob@example.org", 0, 0),
            wheel.dial_token("bob@example.org", 0, 1),
            wheel.dial_token("bob@example.org", 1, 0),
            wheel.dial_token("carol@example.org", 0, 0),
        }
        assert len(tokens) == 4

    def test_expected_tokens_enumerates_friends_and_intents(self):
        wheel = Keywheel()
        wheel.add_friend("bob@example.org", b"\x01" * 32, 0)
        wheel.add_friend("carol@example.org", b"\x02" * 32, 0)
        wheel.add_friend("future@example.org", b"\x03" * 32, 99)
        expected = wheel.expected_tokens(round_number=5, num_intents=3)
        # future@example.org's wheel is not live yet, so 2 friends x 3 intents.
        assert len(expected) == 6
        assert all(value[0] in ("bob@example.org", "carol@example.org") for value in expected.values())

    def test_derivation_does_not_mutate_state(self):
        wheel = Keywheel()
        wheel.add_friend("bob@example.org", b"\x01" * 32, 0)
        before = wheel.entry("bob@example.org").secret
        wheel.dial_token("bob@example.org", 9, 2)
        assert wheel.entry("bob@example.org").secret == before
        assert wheel.entry("bob@example.org").round_number == 0
