"""Tests for onion encryption, mix servers, mailboxes, and the full chain."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MixnetError, RoundError
from repro.mixnet.chain import MixChain
from repro.mixnet.mailbox import (
    COVER_MAILBOX_ID,
    AddFriendMailbox,
    DialingMailbox,
    MailboxSet,
    choose_mailbox_count,
    mailbox_for_identity,
)
from repro.mixnet.noise import NoiseConfig
from repro.mixnet.onion import OnionKeyPair, onion_overhead, unwrap_layer, wrap_onion
from repro.mixnet.server import MixServer, decode_inner_payload, encode_inner_payload
from repro.utils.rng import DeterministicRng


def make_chain(num_servers: int = 3, noise: NoiseConfig | None = None, seed: str = "chain") -> MixChain:
    servers = [
        MixServer(f"mix{i}", rng=DeterministicRng(f"{seed}-{i}")) for i in range(num_servers)
    ]
    return MixChain(servers, noise_config=noise if noise is not None else NoiseConfig(5, 0, 5, 0))


class TestOnion:
    def test_wrap_unwrap_through_three_servers(self):
        keys = [OnionKeyPair.generate() for _ in range(3)]
        payload = b"inner payload"
        envelope = wrap_onion(payload, [k.public for k in keys])
        assert len(envelope) == len(payload) + onion_overhead(3)
        for key in keys:
            envelope = unwrap_layer(envelope, key)
        assert envelope == payload

    def test_wrong_server_key_fails(self):
        keys = [OnionKeyPair.generate() for _ in range(2)]
        rogue = OnionKeyPair.generate()
        envelope = wrap_onion(b"payload", [k.public for k in keys])
        with pytest.raises(MixnetError):
            unwrap_layer(envelope, rogue)

    def test_out_of_order_unwrap_fails(self):
        keys = [OnionKeyPair.generate() for _ in range(2)]
        envelope = wrap_onion(b"payload", [k.public for k in keys])
        with pytest.raises(MixnetError):
            unwrap_layer(envelope, keys[1])

    def test_short_envelope_rejected(self):
        with pytest.raises(MixnetError):
            unwrap_layer(b"tiny", OnionKeyPair.generate())

    def test_empty_chain_rejected(self):
        with pytest.raises(MixnetError):
            wrap_onion(b"payload", [])

    @given(st.binary(max_size=300), st.integers(min_value=1, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_roundtrip_property(self, payload, depth):
        keys = [OnionKeyPair.generate() for _ in range(depth)]
        envelope = wrap_onion(payload, [k.public for k in keys])
        for key in keys:
            envelope = unwrap_layer(envelope, key)
        assert envelope == payload


class TestMailboxRouting:
    def test_mailbox_for_identity_is_stable_and_case_insensitive(self):
        assert mailbox_for_identity("Bob@Example.org", 8) == mailbox_for_identity("bob@example.org", 8)

    def test_mailbox_in_range(self):
        for k in (1, 3, 7, 100):
            assert 0 <= mailbox_for_identity("alice@example.org", k) < k

    def test_choose_mailbox_count(self):
        assert choose_mailbox_count(0, 12000) == 1
        assert choose_mailbox_count(50_000, 12_000) == 4
        assert choose_mailbox_count(500_000, 75_000) == 7  # paper's 10M-user dialing point
        with pytest.raises(ValueError):
            choose_mailbox_count(100, 0)

    def test_addfriend_mailbox_serialization(self):
        mailbox = AddFriendMailbox(mailbox_id=3, ciphertexts=[b"aaa", b"bbbb"])
        restored = AddFriendMailbox.from_bytes(mailbox.to_bytes())
        assert restored.mailbox_id == 3
        assert restored.ciphertexts == [b"aaa", b"bbbb"]

    def test_dialing_mailbox_serialization_and_membership(self):
        tokens = [bytes([i]) * 32 for i in range(10)]
        mailbox = DialingMailbox.build(2, tokens)
        restored = DialingMailbox.from_bytes(mailbox.to_bytes())
        assert restored.mailbox_id == 2
        assert restored.token_count == 10
        assert all(token in restored for token in tokens)

    def test_inner_payload_roundtrip(self):
        encoded = encode_inner_payload(7, b"body")
        assert decode_inner_payload(encoded) == (7, b"body")

    def test_message_counts_is_the_observable_vector(self):
        """The per-mailbox count vector the privacy ledger records: message
        counts (noise included), indexed by mailbox ID, zeros for empties."""
        mailboxes = MailboxSet(round_number=1, protocol="add-friend", mailbox_count=3)
        mailboxes.addfriend[0] = AddFriendMailbox(mailbox_id=0, ciphertexts=[b"a", b"b"])
        mailboxes.addfriend[2] = AddFriendMailbox(mailbox_id=2, ciphertexts=[b"c"])
        assert mailboxes.message_counts() == [2, 0, 1]

        dialing = MailboxSet(round_number=2, protocol="dialing", mailbox_count=2)
        dialing.dialing[1] = DialingMailbox.build(1, [bytes([i]) * 32 for i in range(5)])
        assert dialing.message_counts() == [0, 5]


class TestMixServer:
    def test_round_key_lifecycle(self):
        server = MixServer("mix0")
        public = server.open_round("add-friend", 1)
        assert server.round_public_key("add-friend", 1) == public
        assert server.has_round_key("add-friend", 1)
        # The dialing namespace is independent of the add-friend one.
        assert not server.has_round_key("dialing", 1)
        server.close_round("add-friend", 1)
        assert not server.has_round_key("add-friend", 1)
        with pytest.raises(RoundError):
            server.round_public_key("add-friend", 1)

    def test_process_batch_requires_open_round(self):
        server = MixServer("mix0")
        with pytest.raises(RoundError):
            server.process_batch(1, "add-friend", [], [], 1, NoiseConfig(0, 0, 0, 0), 16)

    def test_malformed_envelopes_are_dropped_not_fatal(self):
        server = MixServer("mix0", rng=DeterministicRng("x"))
        server.open_round("add-friend", 1)
        out = server.process_batch(
            1, "add-friend", [b"garbage", b""], [], 1, NoiseConfig(0, 0, 0, 0), 16
        )
        assert out == []
        assert server.last_stats.dropped == 2

    def test_noise_is_added_per_mailbox(self):
        server = MixServer("mix0", rng=DeterministicRng("x"))
        server.open_round("add-friend", 1)
        out = server.process_batch(
            1, "add-friend", [], [], mailbox_count=4,
            noise_config=NoiseConfig(10, 0, 10, 0), noise_body_length=16,
        )
        assert len(out) == 40
        assert server.last_stats.noise_added == 40
        # Noise is well-formed and spread across all mailboxes.
        mailboxes = {decode_inner_payload(payload)[0] for payload in out}
        assert mailboxes == {0, 1, 2, 3}

    def test_drop_all_noise_switch(self):
        server = MixServer("mix0", rng=DeterministicRng("x"))
        server.drop_all_noise = True
        server.open_round("add-friend", 1)
        out = server.process_batch(
            1, "add-friend", [], [], 2, NoiseConfig(10, 0, 10, 0), 16
        )
        assert out == []


class TestMixChain:
    def _submit_round(self, chain, round_number, payloads, mailbox_count, protocol="add-friend", body_len=64):
        publics = chain.open_round(protocol, round_number)
        envelopes = [wrap_onion(p, publics) for p in payloads]
        return chain.run_round(round_number, protocol, envelopes, mailbox_count, body_len)

    def test_addfriend_requests_reach_their_mailboxes(self):
        chain = make_chain(3)
        payloads = [
            encode_inner_payload(0, b"request-for-mailbox-0"),
            encode_inner_payload(1, b"request-for-mailbox-1"),
            encode_inner_payload(1, b"another-for-mailbox-1"),
        ]
        result = self._submit_round(chain, 1, payloads, mailbox_count=2)
        assert b"request-for-mailbox-0" in result.mailboxes.addfriend[0].ciphertexts
        assert b"request-for-mailbox-1" in result.mailboxes.addfriend[1].ciphertexts
        assert b"another-for-mailbox-1" in result.mailboxes.addfriend[1].ciphertexts
        assert result.delivered_real == 3

    def test_cover_traffic_is_dropped(self):
        chain = make_chain(2)
        payloads = [encode_inner_payload(COVER_MAILBOX_ID, bytes(32)) for _ in range(5)]
        result = self._submit_round(chain, 1, payloads, mailbox_count=1)
        assert result.cover_dropped == 5
        assert result.delivered_real == 0

    def test_noise_added_by_every_server(self):
        chain = make_chain(3, noise=NoiseConfig(7, 0, 7, 0))
        result = self._submit_round(chain, 1, [], mailbox_count=2)
        assert result.per_server_noise == [14, 14, 14]
        assert result.noise_added == 42
        # Noise lands in mailboxes and is indistinguishable from real traffic.
        assert sum(len(m) for m in result.mailboxes.addfriend.values()) == 42

    def test_dialing_round_builds_bloom_filters(self):
        chain = make_chain(2, noise=NoiseConfig(0, 0, 3, 0))
        tokens = [bytes([i]) * 32 for i in range(4)]
        payloads = [encode_inner_payload(0, token) for token in tokens]
        result = self._submit_round(chain, 1, payloads, mailbox_count=1, protocol="dialing", body_len=32)
        mailbox = result.mailboxes.dialing[0]
        assert all(token in mailbox for token in tokens)

    def test_unknown_protocol_rejected(self):
        chain = make_chain(1)
        chain.open_round("bogus", 1)
        with pytest.raises(MixnetError):
            chain.run_round(1, "bogus", [], 1, 32)

    def test_round_keys_erased_after_close(self):
        chain = make_chain(2)
        chain.open_round("add-friend", 4)
        chain.close_round("add-friend", 4)
        assert all(not server.has_round_key("add-friend", 4) for server in chain.servers)

    def test_out_of_range_mailbox_is_dropped(self):
        chain = make_chain(1)
        result = self._submit_round(chain, 1, [encode_inner_payload(9, b"x")], mailbox_count=2)
        assert result.delivered_real == 0
        assert result.dropped >= 1

    def test_shuffling_hides_submission_order(self):
        """With an honest server in the chain, mailbox order should not be the
        submission order (statistically)."""
        chain = make_chain(1, noise=NoiseConfig(0, 0, 0, 0), seed="shuffle")
        payloads = [encode_inner_payload(0, bytes([i]) * 8) for i in range(30)]
        result = self._submit_round(chain, 1, payloads, mailbox_count=1, body_len=8)
        received = result.mailboxes.addfriend[0].ciphertexts
        assert sorted(received) == sorted(bytes([i]) * 8 for i in range(30))
        assert received != [bytes([i]) * 8 for i in range(30)]

    def test_faulty_server_dropping_requests_is_detected_in_stats(self):
        chain = make_chain(2, noise=NoiseConfig(0, 0, 0, 0))
        chain.servers[0].drop_fraction = 1.0
        payloads = [encode_inner_payload(0, b"x" * 8) for _ in range(10)]
        result = self._submit_round(chain, 1, payloads, mailbox_count=1, body_len=8)
        assert result.delivered_real == 0
        assert result.dropped == 10

    def test_empty_chain_rejected(self):
        with pytest.raises(MixnetError):
            MixChain([])
