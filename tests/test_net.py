"""The transport subsystem: frames, scheduler, links, and both transports."""

from __future__ import annotations

import pytest

from repro.core.config import AlpenhornConfig
from repro.core.coordinator import Deployment
from repro.errors import NetworkError, PartitionError, SerializationError
from repro.net import (
    DirectTransport,
    EventScheduler,
    Frame,
    LinkSpec,
    NetworkTopology,
    SimulatedNetwork,
)
from repro.net.frames import decode_envelope_batch, encode_envelope_batch
from repro.net.transport import RpcResult
from repro.utils.rng import DeterministicRng
from repro.utils.serialization import Packer, Unpacker


class TestFrames:
    def test_roundtrip(self):
        frame = Frame(kind=0, msg_id=7, src="alice@x", dst="entry", method="submit", payload=b"\x01\x02")
        decoded = Frame.from_bytes(frame.to_bytes())
        assert decoded == frame

    def test_bad_magic_rejected(self):
        blob = Frame(0, 1, "a", "b", "m", b"").to_bytes()
        with pytest.raises(SerializationError):
            Frame.from_bytes(b"XXXX" + blob[4:])

    def test_trailing_bytes_rejected(self):
        blob = Frame(0, 1, "a", "b", "m", b"").to_bytes()
        with pytest.raises(SerializationError):
            Frame.from_bytes(blob + b"\x00")

    def test_frame_overhead_matches_codec(self):
        from repro.net.frames import frame_overhead

        for src, dst, method in [("a", "b", "m"), ("alice@example.org", "entry", "submit")]:
            packed = len(Frame(0, 0, src, dst, method, b"").to_bytes())
            assert frame_overhead(src, dst, method) == packed

    def test_envelope_batch_roundtrip(self):
        batch = [b"a" * 10, b"", b"c" * 3]
        assert decode_envelope_batch(encode_envelope_batch(batch)) == batch

    def test_f64_wire_roundtrip(self):
        for value in (0.0, 1.5, -2.25, 4000.0, 1e-10):
            assert Unpacker(Packer().f64(value).pack()).f64() == value


class TestEventScheduler:
    def test_events_fire_in_time_order(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(2.0, lambda: fired.append("late"))
        sched.schedule(1.0, lambda: fired.append("early"))
        sched.run_until_idle()
        assert fired == ["early", "late"]
        assert sched.now == 2.0

    def test_ties_break_by_schedule_order(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(1.0, lambda: fired.append(1))
        sched.schedule(1.0, lambda: fired.append(2))
        sched.run_until_idle()
        assert fired == [1, 2]

    def test_advance_drains_due_events(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(1.0, lambda: fired.append("due"))
        sched.schedule(5.0, lambda: fired.append("future"))
        sched.advance(2.0)
        assert fired == ["due"]
        assert sched.now == 2.0
        assert sched.pending() == 1

    def test_cancelled_event_does_not_fire(self):
        sched = EventScheduler()
        fired = []
        event = sched.schedule(1.0, lambda: fired.append("no"))
        event.cancel()
        sched.run_until_idle()
        assert fired == []

    def test_advance_skips_cancelled_head_without_running_future_events(self):
        sched = EventScheduler()
        fired = []
        due_but_cancelled = sched.schedule(1.0, lambda: fired.append("cancelled"))
        due_but_cancelled.cancel()
        sched.schedule(10.0, lambda: fired.append("future"))
        sched.advance(2.0)
        assert fired == []          # the t=10 event must not fire early
        assert sched.now == 2.0     # and time must not jump past the deadline
        assert sched.pending() == 1


class TestLinkModels:
    def test_bandwidth_term(self):
        link = LinkSpec(latency_s=0.1, bandwidth_bps=8_000)  # 1000 bytes/s
        rng = DeterministicRng("links")
        assert link.transfer_delay(1000, rng) == pytest.approx(0.1 + 1.0)

    def test_jitter_bounded(self):
        link = LinkSpec(latency_s=0.1, jitter_s=0.05)
        rng = DeterministicRng("jitter")
        for _ in range(50):
            delay = link.transfer_delay(100, rng)
            assert 0.1 <= delay < 0.15

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            LinkSpec(latency_s=-1.0)
        with pytest.raises(ValueError):
            LinkSpec(drop_rate=1.0)

    def test_topology_resolution_order(self):
        topo = NetworkTopology(default=LinkSpec(latency_s=1.0))
        topo.set_endpoint("slow", LinkSpec(latency_s=5.0))
        topo.set_link("a", "slow", LinkSpec(latency_s=9.0))
        assert topo.link("a", "b").latency_s == 1.0          # default
        assert topo.link("b", "slow").latency_s == 5.0       # endpoint
        assert topo.link("slow", "a").latency_s == 9.0       # pair beats endpoint

    def test_competing_endpoint_overrides_compose_worst_of_each(self):
        topo = NetworkTopology()
        topo.set_endpoint("a", LinkSpec(latency_s=0.1, drop_rate=0.5))
        topo.set_endpoint("b", LinkSpec(latency_s=0.001, bandwidth_bps=1e6, drop_rate=0.5))
        combined = topo.link("a", "b")
        assert combined.latency_s == 0.1            # a's worse latency
        assert combined.bandwidth_bps == 1e6        # b's bottleneck
        assert combined.drop_rate == pytest.approx(0.75)  # losses compound

    def test_region_links(self):
        topo = NetworkTopology(default=LinkSpec(latency_s=1.0))
        topo.assign_region("alice", "eu")
        topo.assign_region("entry", "us")
        topo.set_region_link("eu", "us", LinkSpec(latency_s=0.08))
        assert topo.link("alice", "entry").latency_s == 0.08
        assert topo.link("alice", "unassigned").latency_s == 1.0

    def test_partition_and_heal(self):
        topo = NetworkTopology()
        topo.partition("a", "b")
        assert topo.is_partitioned("b", "a")
        topo.heal("a", "b")
        assert not topo.is_partitioned("a", "b")
        topo.partition_endpoint("pkg1")
        assert topo.is_partitioned("anyone", "pkg1")
        topo.heal_endpoint("pkg1")
        assert not topo.is_partitioned("anyone", "pkg1")


class TestDirectTransport:
    def test_call_dispatches_and_counts_bytes(self):
        transport = DirectTransport()
        seen = []

        def handler(request):
            seen.append((request.src, request.method, request.payload))
            return b"pong"

        transport.register("server", handler)
        result = transport.call("client", "server", "ping", b"abc")
        assert result.payload == b"pong"
        assert result.latency_s == 0.0
        assert seen == [("client", "ping", b"abc")]
        assert transport.stats.messages_sent == 2
        assert transport.stats.bytes_sent > 0

    def test_unknown_endpoint_raises(self):
        transport = DirectTransport()
        with pytest.raises(NetworkError):
            transport.call("client", "ghost", "ping")

    def test_duplicate_registration_rejected(self):
        transport = DirectTransport()
        transport.register("server", lambda request: None)
        with pytest.raises(NetworkError):
            transport.register("server", lambda request: None)

    def test_clock_only_moves_on_advance(self):
        transport = DirectTransport()
        transport.register("server", lambda request: None)
        transport.call("client", "server", "ping")
        assert transport.now() == 0.0
        transport.advance(60.0)
        assert transport.now() == 60.0

    def test_phase_is_transparent(self):
        transport = DirectTransport()
        with transport.phase() as phase:
            assert phase.run(lambda: 41) == 41


class TestSimulatedNetwork:
    def make_net(self, **link_kwargs) -> SimulatedNetwork:
        topo = NetworkTopology(default=LinkSpec(**link_kwargs))
        net = SimulatedNetwork(topology=topo, seed="test-net")
        net.register("server", lambda request: RpcResult(payload=b"ok"))
        return net

    def test_call_pays_round_trip_latency(self):
        net = self.make_net(latency_s=0.25)
        result = net.call("client", "server", "ping", b"hello")
        assert result.payload == b"ok"
        assert result.latency_s == pytest.approx(0.5)
        assert net.now() == pytest.approx(0.5)

    def test_bandwidth_scales_with_message_size(self):
        net = self.make_net(latency_s=0.0, bandwidth_bps=8_000)
        small = net.call("client", "server", "ping", b"x" * 10).latency_s
        large = net.call("client", "server", "ping", b"x" * 1000).latency_s
        assert large > small

    def test_phase_takes_slowest_participant(self):
        net = self.make_net(latency_s=0.1)
        with net.phase() as phase:
            phase.run(lambda: net.call("a", "server", "ping"))
            phase.run(lambda: net.call("b", "server", "ping"))
            phase.run(lambda: [net.call("c", "server", "ping") for _ in range(3)])
        # Three sequential calls from "c" dominate: 3 x 0.2s, not 5 x 0.2s.
        assert net.now() == pytest.approx(0.6)

    def test_partition_raises(self):
        net = self.make_net(latency_s=0.1)
        net.topology.partition_endpoint("server")
        with pytest.raises(PartitionError):
            net.call("client", "server", "ping")
        net.topology.heal_endpoint("server")
        assert net.call("client", "server", "ping").payload == b"ok"

    def test_drops_cost_retry_timeouts(self):
        net = self.make_net(latency_s=0.1, drop_rate=0.2)
        latencies = [net.call("client", "server", "ping").latency_s for _ in range(30)]
        assert any(lat > 1.0 for lat in latencies)  # at least one retry happened
        assert net.stats.messages_dropped > 0

    def test_fully_lossy_link_raises_network_error(self):
        net = self.make_net(latency_s=0.1, drop_rate=0.99)
        with pytest.raises(NetworkError):
            for _ in range(200):
                net.call("client", "server", "ping")

    def test_exhausted_retries_still_cost_simulated_time(self):
        net = self.make_net(latency_s=0.1, drop_rate=0.999)
        before = net.now()
        with pytest.raises(NetworkError) as excinfo:
            net.call("client", "server", "ping")
        # The caller sat through every retransmission timeout before giving up.
        assert net.now() - before >= net.max_attempts * net.retry_timeout_s
        assert excinfo.value.request_delivered is False

    def test_nested_calls_accumulate_on_the_critical_path(self):
        topo = NetworkTopology(default=LinkSpec(latency_s=0.1))
        net = SimulatedNetwork(topology=topo, seed="nested")
        net.register("backend", lambda request: b"data")
        net.register(
            "frontend",
            lambda request: net.call("frontend", "backend", "fetch").payload,
        )
        result = net.call("client", "frontend", "get")
        assert result.payload == b"data"
        assert result.latency_s == pytest.approx(0.4)  # two nested round trips


class TestDeploymentOverSimulatedNetwork:
    def make_deployment(self, latency_ms: float, seed: str = "sim-deploy") -> Deployment:
        topo = NetworkTopology(default=LinkSpec.of(latency_ms=latency_ms, bandwidth_mbps=100))
        net = SimulatedNetwork(topology=topo, seed=f"{seed}/net")
        return Deployment(
            AlpenhornConfig.for_tests(backend="simulated"), seed=seed, transport=net
        )

    def test_round_reports_nonzero_latency_and_bytes(self):
        deployment = self.make_deployment(latency_ms=30)
        deployment.create_client("alice@example.org")
        deployment.create_client("bob@example.org")
        deployment.client("alice@example.org").add_friend("bob@example.org")
        summary = deployment.run_addfriend_round()
        assert summary.latency_s > 0.0
        assert summary.bytes_sent > 0
        assert summary.failures == 0
        assert summary.submissions == 2

    def test_link_latency_drives_round_latency(self):
        latencies = {}
        for latency_ms in (20, 100):
            deployment = self.make_deployment(latency_ms=latency_ms)
            deployment.create_client("alice@example.org")
            deployment.create_client("bob@example.org")
            deployment.client("alice@example.org").add_friend("bob@example.org")
            latencies[latency_ms] = deployment.run_addfriend_round().latency_s
        assert latencies[100] > latencies[20] * 2

    def test_full_flow_matches_direct_transport_semantics(self):
        deployment = self.make_deployment(latency_ms=10)
        alice = deployment.create_client("alice@example.org")
        bob = deployment.create_client("bob@example.org")
        deployment.befriend("alice@example.org", "bob@example.org")
        assert alice.friends() == ["bob@example.org"]
        placed = deployment.place_call("alice@example.org", "bob@example.org")
        assert placed is not None
        assert bob.received_calls()[-1].session_key == placed.session_key

    def test_partitioned_pkg_fails_participants_not_deployment(self):
        deployment = self.make_deployment(latency_ms=10, seed="partition")
        deployment.create_client("alice@example.org")
        deployment.create_client("bob@example.org")
        # Open round 1 normally, then cut one PKG before round 2's extractions.
        deployment.run_addfriend_round()
        deployment.transport.topology.partition_endpoint("pkg1")
        with pytest.raises(NetworkError):
            deployment.run_addfriend_round()
        deployment.transport.topology.heal_endpoint("pkg1")
        summary = deployment.run_addfriend_round()
        assert summary.failures == 0

    def test_control_plane_failure_aborts_round_and_erases_secrets(self):
        """If the entry/CDN control RPCs fail after submissions, the round is
        torn down: no retained envelopes, no live round keys anywhere."""
        deployment = self.make_deployment(latency_ms=10, seed="ctl-abort")
        alice = deployment.create_client("alice@example.org")
        deployment.create_client("bob@example.org")
        alice.add_friend("bob@example.org")

        # Announcement and submissions succeed; the post-submission control
        # RPC is what the network loses.
        def lost_control(*args, **kwargs):
            raise NetworkError("control plane down")

        deployment.entry_stub.close_round = lost_control
        with pytest.raises(NetworkError):
            deployment.run_addfriend_round()
        aborted = deployment.addfriend_round
        assert deployment.entry.submissions("add-friend", aborted) == 0  # batch dropped
        assert all(not mix.has_round_key("add-friend", aborted) for mix in deployment.mix_servers)
        assert all(not pkg.has_master_secret(aborted) for pkg in deployment.pkgs)
        assert not alice.addfriend.has_round_keys(aborted)
        # The deployment recovers once the control path works again.
        del deployment.entry_stub.close_round
        deployment.run_addfriend_round()
        deployment.run_addfriend_round()

    def test_aborted_round_erases_partially_opened_keys(self):
        """If announce fails partway (a PKG is partitioned during
        commit-reveal), the servers that already opened the round must erase
        its secrets -- forward secrecy holds even for rounds that never ran."""
        deployment = self.make_deployment(latency_ms=10, seed="abort-fs")
        deployment.create_client("alice@example.org")
        deployment.transport.topology.partition_endpoint("pkg1")
        with pytest.raises(NetworkError):
            deployment.run_addfriend_round()
        aborted = deployment.addfriend_round
        assert all(not mix.has_round_key("add-friend", aborted) for mix in deployment.mix_servers)
        assert not deployment.pkgs[0].has_master_secret(aborted)

    def test_chain_does_not_refetch_round_keys_per_hop(self):
        deployment = self.make_deployment(latency_ms=10, seed="keycache")
        deployment.create_client("alice@example.org")
        deployment.run_addfriend_round()
        # Downstream onion keys come from open_round; the pipeline must not
        # issue per-hop round_public_key RPCs (O(servers^2) otherwise).
        assert deployment.transport.stats.calls_by_method.get("round_public_key", 0) == 0

    def test_failed_submission_requeues_the_friend_request(self):
        deployment = self.make_deployment(latency_ms=10, seed="requeue")
        alice = deployment.create_client("alice@example.org")
        bob = deployment.create_client("bob@example.org")
        alice.add_friend("bob@example.org")
        # Alice can reach the PKGs but not the entry server this round.
        deployment.transport.topology.partition("alice@example.org", "entry")
        summary = deployment.run_addfriend_round()
        assert summary.failures == 1
        assert alice.addfriend.pending_in_queue() == 1  # request survived
        deployment.transport.topology.heal("alice@example.org", "entry")
        deployment.run_addfriend_round()  # request goes out
        deployment.run_addfriend_round()  # confirmation comes back
        assert alice.friends() == ["bob@example.org"]
        assert bob.friends() == ["alice@example.org"]

    def test_failed_dial_submission_withdraws_placed_call(self):
        deployment = self.make_deployment(latency_ms=10, seed="requeue-dial")
        alice = deployment.create_client("alice@example.org")
        bob = deployment.create_client("bob@example.org")
        deployment.befriend("alice@example.org", "bob@example.org")
        alice.call("bob@example.org")
        deployment.transport.topology.partition("alice@example.org", "entry")
        # Dial rounds until the wheel is live and the failed send happens.
        for _ in range(3):
            deployment.run_dialing_round()
        assert alice.placed_calls() == []              # withdrawn, not phantom
        assert alice.dialing.pending_in_queue() == 1   # call still queued
        deployment.transport.topology.heal("alice@example.org", "entry")
        deployment.run_dialing_round()
        assert alice.placed_calls()
        assert bob.received_calls()[-1].session_key == alice.placed_calls()[-1].session_key

    def test_offline_participants_skip_round(self):
        deployment = self.make_deployment(latency_ms=10, seed="offline")
        deployment.create_client("alice@example.org")
        deployment.create_client("bob@example.org")
        deployment.create_client("carol@example.org")
        summary = deployment.run_addfriend_round(participants=["alice@example.org", "bob@example.org"])
        assert summary.participants == 2
        assert summary.submissions == 2
