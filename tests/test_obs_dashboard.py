"""Dashboard tests: state/control endpoints, the round gate, live SSE."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.obs.dashboard import DashboardMonitor, DashboardServer


def _get_json(url: str, timeout: float = 5.0) -> dict:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


class TestGate:
    def test_run_mode_does_not_block(self):
        server = DashboardServer()
        start = time.monotonic()
        server.gate()
        assert time.monotonic() - start < 0.2

    def test_pause_blocks_until_released(self):
        server = DashboardServer()
        server.request("pause")
        released = threading.Event()

        def waiter():
            server.gate()
            released.set()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        assert not released.wait(0.3)
        server.request("run")
        assert released.wait(3.0)
        thread.join(timeout=3.0)

    def test_step_releases_exactly_one_round(self):
        server = DashboardServer()
        server.request("pause")
        server.request("step")
        assert server.state()["pending_steps"] == 1
        server.gate()  # consumes the single credit without blocking
        assert server.state()["pending_steps"] == 0
        assert server.state()["mode"] == "pause"

    def test_stop_releases_a_paused_gate(self):
        server = DashboardServer()
        server.request("pause")
        released = threading.Event()
        thread = threading.Thread(target=lambda: (server.gate(), released.set()), daemon=True)
        thread.start()
        assert not released.wait(0.3)
        with server._gate:
            server._closed = True
            server._gate.notify_all()
        assert released.wait(3.0)
        thread.join(timeout=3.0)

    def test_unknown_action_raises(self):
        with pytest.raises(ValueError):
            DashboardServer().request("warp")


class TestPublish:
    def test_publish_updates_state_and_history(self):
        server = DashboardServer()
        server.publish("scenario_started", name="baseline", clients=10)
        server.publish("round", protocol="add-friend", round=1, latency_s=0.3)
        state = server.state()
        assert state["status"] == "running"
        assert state["scenario"]["clients"] == 10
        assert len(state["rounds"]) == 1

    def test_subscribers_get_replay_then_live_events(self):
        server = DashboardServer()
        server.publish("scenario_started", name="x")
        replay, live = server.subscribe()
        assert [e["type"] for e in replay] == ["scenario_started"]
        server.publish("round", round=1)
        assert live.get(timeout=1.0)["type"] == "round"
        server.unsubscribe(live)

    def test_state_rounds_are_capped(self):
        from repro.obs.dashboard import MAX_STATE_ROUNDS

        server = DashboardServer(history=8)
        for i in range(MAX_STATE_ROUNDS + 10):
            server.publish("round", round=i)
        assert len(server.state()["rounds"]) == MAX_STATE_ROUNDS
        assert len(server._history) == 8


class TestHttpEndpoints:
    @pytest.fixture
    def server(self):
        server = DashboardServer()
        server.start()
        yield server
        server.stop()

    def test_index_serves_the_single_file_ui(self, server):
        with urllib.request.urlopen(server.url, timeout=5.0) as response:
            body = response.read().decode("utf-8")
        assert "EventSource('/events')" in body
        assert "control('step')" in body

    def test_state_endpoint(self, server):
        state = _get_json(server.url + "state")
        assert state["status"] == "idle"
        assert state["mode"] == "run"

    def test_control_endpoint_drives_the_gate(self, server):
        assert _get_json(server.url + "control?action=pause")["mode"] == "pause"
        assert _get_json(server.url + "control?action=step")["mode"] == "pause"
        assert server.state()["pending_steps"] == 1
        assert _get_json(server.url + "control?action=run")["mode"] == "run"

    def test_control_rejects_unknown_actions(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get_json(server.url + "control?action=warp")
        assert excinfo.value.code == 400

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get_json(server.url + "nope")
        assert excinfo.value.code == 404


class TestLiveScenarioScrape:
    """The acceptance-criteria integration test: scrape SSE mid-run."""

    def test_sse_streams_round_stats_during_a_run(self):
        from repro.sim.scenarios import make_scenario

        server = DashboardServer()
        server.start()
        scenario = make_scenario(
            "baseline",
            num_clients=16,
            addfriend_rounds=2,
            dialing_rounds=1,
            friend_pairs=4,
        )
        scenario.monitors.append(DashboardMonitor(server))
        results: list = []
        thread = threading.Thread(target=lambda: results.append(scenario.run()), daemon=True)
        thread.start()
        seen: dict[str, list] = {}
        try:
            request = urllib.request.Request(server.url + "events")
            with urllib.request.urlopen(request, timeout=15.0) as stream:
                deadline = time.monotonic() + 60.0
                while time.monotonic() < deadline:
                    line = stream.readline().decode("utf-8").strip()
                    if not line.startswith("data: "):
                        continue
                    event = json.loads(line[len("data: ") :])
                    seen.setdefault(event["type"], []).append(event["data"])
                    if "scenario_finished" in seen:
                        break
        finally:
            thread.join(timeout=120.0)
            server.stop()

        assert not thread.is_alive()
        assert results, "scenario did not finish"
        assert seen["scenario_started"][0]["clients"] == 16
        rounds = seen["round"]
        assert len(rounds) == 3
        first = rounds[0]
        assert {"protocol", "latency_s", "submit_stage_s", "mix_stage_s", "scan_stage_s"} <= set(
            first
        )
        assert seen["scenario_finished"][0]["rounds"] == 3
        # The registry taps fed EventBus activity counts over the wire.
        assert "events" in seen and seen["events"][-1]
        # A mid-run /state scrape (after the fact here, but same code path)
        # reflects the finished scenario.
        state = server.state()
        assert state["status"] == "finished"
        assert len(state["rounds"]) == 3

    def test_slotted_delivery_keeps_the_event_stream_coherent(self):
        """Batch (slotted) delivery must not change what the monitors see.

        The before_round/on_round hooks fire at stage boundaries, not per
        frame, so the published stream under slotted delivery has to match
        the per-frame run event for event -- pipelined rounds included --
        with monotonic clocks and the scheduler aggregates reported.
        """
        from repro.sim.scenarios import make_scenario

        def stream(fidelity: str) -> list[dict]:
            server = DashboardServer()
            scenario = make_scenario(
                "pipelined_rounds",
                num_clients=12,
                friend_pairs=3,
                addfriend_rounds=2,
                dialing_rounds=2,
                fidelity=fidelity,
            )
            scenario.monitors.append(DashboardMonitor(server))
            scenario.run()
            replay, live = server.subscribe()
            server.unsubscribe(live)
            return replay

        def comparable(events: list[dict]) -> list[tuple]:
            out = []
            for event in events:
                if event["type"] == "net":
                    continue  # scheduler aggregates legitimately differ
                data = dict(event["data"])
                data.pop("wall_seconds", None)
                data.pop("fidelity", None)
                out.append((event["type"], data))
            return out

        frames = stream("frames")
        slotted = stream("slotted")
        assert comparable(slotted) == comparable(frames)
        clocks = [e["data"]["clock"] for e in slotted if e["type"] == "round"]
        assert clocks == sorted(clocks) and len(clocks) == 4
        net = [e["data"] for e in slotted if e["type"] == "net"]
        assert net and net[-1]["slotted_items"] > 0
        assert net[-1]["frames_in_flight_peak"] > 0

    def test_monitor_paused_holds_the_first_round_until_stepped(self):
        from repro.sim.scenarios import make_scenario

        server = DashboardServer()
        scenario = make_scenario(
            "baseline",
            num_clients=8,
            addfriend_rounds=1,
            dialing_rounds=0,
            friend_pairs=2,
        )
        scenario.monitors.append(DashboardMonitor(server, paused=True))
        results: list = []
        thread = threading.Thread(target=lambda: results.append(scenario.run()), daemon=True)
        thread.start()
        time.sleep(0.4)
        assert not results, "paused scenario must not have finished"
        server.request("run")
        thread.join(timeout=120.0)
        assert results and len(results[0].rounds) == 1
