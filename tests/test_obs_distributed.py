"""Distributed observability: trace propagation, clock alignment, telemetry.

Covers the cross-process pieces of :mod:`repro.obs.distributed` end to end:
the wire trailer round-trip (hypothesis), client/server span linkage over a
real :class:`AsyncioTransport`, the worker telemetry harvest through
:class:`MultiprocessTransport`, per-endpoint runtime attribution, and the
multi-process extensions to the trace validator.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RemoteCallError, RoundError
from repro.net.frames import Frame, KIND_REQUEST
from repro.net.transport import BatchCall, RpcResult
from repro.obs.distributed import (
    TraceContext,
    WorkerTelemetry,
    estimate_clock_offset,
    merge_worker_metrics,
    read_context,
    rss_bytes,
    runtime_attribution,
    write_context,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    Tracer,
    propagation_coverage,
    set_active_tracer,
    validate_trace_events,
)
from repro.runtime import AsyncioTransport, MultiprocessTransport, mix_endpoint_spec, wire
from repro.utils.serialization import Packer, Unpacker


@pytest.fixture
def tracer():
    tracer = Tracer()
    previous = set_active_tracer(tracer)
    yield tracer
    set_active_tracer(previous)


def make_frame(method="echo"):
    return Frame(kind=KIND_REQUEST, msg_id=7, src="client", dst="server",
                 method=method, payload=b"\x01\x02")


class TestTraceContextWire:
    @given(
        trace=st.text(max_size=40),
        span_id=st.integers(min_value=0, max_value=2**64 - 1),
        origin=st.text(max_size=40),
        pid=st.integers(min_value=0, max_value=2**22),
    )
    @settings(max_examples=50)
    def test_trailer_roundtrip(self, trace, span_id, origin, pid):
        context = TraceContext(trace=trace, span_id=span_id, origin=origin, pid=pid)
        packed = write_context(Packer(), context).pack()
        assert read_context(Unpacker(packed)) == context

    def test_absent_trailer_reads_as_none(self):
        assert read_context(Unpacker(b"")) is None
        assert read_context(Unpacker(Packer().u8(0).pack())) is None

    @given(
        span_id=st.integers(min_value=0, max_value=2**64 - 1),
        origin=st.text(max_size=20),
    )
    @settings(max_examples=25)
    def test_message_roundtrip_with_context(self, span_id, origin):
        context = TraceContext(trace="t-1", span_id=span_id, origin=origin, pid=123)
        body = wire.encode_message(make_frame(), trace=context)
        message = wire.decode_message(body)
        assert message.trace == context
        assert message.frame.payload == b"\x01\x02"

    def test_message_without_context(self):
        message = wire.decode_message(wire.encode_message(make_frame()))
        assert message.trace is None

    def test_trailer_does_not_change_untraced_encoding_length_much(self):
        # The no-context trailer is exactly one flag byte.
        plain_legacy_like = wire.encode_message(make_frame())
        with_ctx = wire.encode_message(
            make_frame(), trace=TraceContext("t", 1, "client", 1)
        )
        assert len(with_ctx) > len(plain_legacy_like)


class TestErrorEndpoint:
    def test_known_error_carries_endpoint(self):
        payload = wire.encode_error(RoundError("round closed"), endpoint="mix3")
        exc = wire.decode_error(payload)
        assert isinstance(exc, RoundError)
        assert str(exc) == "round closed"
        assert exc.remote_endpoint == "mix3"

    def test_foreign_error_names_endpoint_in_message(self):
        payload = wire.encode_error(ValueError("boom"), endpoint="entry")
        exc = wire.decode_error(payload)
        assert isinstance(exc, RemoteCallError)
        assert "entry" in str(exc)
        assert exc.remote_endpoint == "entry"

    def test_endpointless_payload_still_decodes(self):
        # An error payload without the endpoint field (older sender).
        payload = Packer().str("RoundError").str("closed").pack()
        exc = wire.decode_error(payload)
        assert isinstance(exc, RoundError)
        assert exc.remote_endpoint == ""

    def test_runtime_error_reply_names_raising_server(self):
        with AsyncioTransport() as transport:
            def handler(request):
                raise ValueError("handler exploded")

            transport.register("pkg0", handler)
            with pytest.raises(RemoteCallError) as info:
                transport.call("client", "pkg0", "extract")
            assert info.value.remote_endpoint == "pkg0"
            assert "pkg0" in str(info.value)


class TestClockOffset:
    def test_min_rtt_sample_wins(self):
        # The 2nd sample has the tightest round-trip; its offset is chosen.
        samples = [(0.0, 1.0, 100.9), (2.0, 2.1, 102.05), (3.0, 3.8, 103.0)]
        assert estimate_clock_offset(samples) == pytest.approx(102.05 - 2.05)

    def test_no_samples_means_zero(self):
        assert estimate_clock_offset([]) == 0.0

    def test_rss_is_nonnegative(self):
        assert rss_bytes() >= 0


class TestSpanLinkage:
    def test_call_and_serve_spans_link_over_tcp(self, tracer):
        with AsyncioTransport() as transport:
            def handler(request):
                return RpcResult(payload=request.payload)

            transport.register("server", handler)
            transport.call("client", "server", "echo", b"hi")

        spans = [s.to_dict() for s in tracer.spans]
        calls = [s for s in spans if s["name"] == "rpc.call"]
        serves = [s for s in spans if s["name"] == "rpc.serve"]
        assert len(calls) == 1 and len(serves) == 1
        assert serves[0]["args"]["parent_span"] == calls[0]["span_id"]
        assert serves[0]["track"] == "server"
        assert serves[0]["args"]["queue_s"] >= 0.0
        assert calls[0]["wall_dur"] >= serves[0]["wall_dur"]

    def test_batch_calls_record_linked_spans(self, tracer):
        with AsyncioTransport() as transport:
            def handler(request):
                return RpcResult(payload=request.payload)

            transport.register("server", handler)
            outcomes = transport.call_batch(
                [BatchCall("c", "server", "echo", payload=bytes([i])) for i in range(4)]
            )
            assert all(o.error is None for o in outcomes)

        spans = [s.to_dict() for s in tracer.spans]
        call_ids = {s["span_id"] for s in spans if s["name"] == "rpc.call"}
        parents = [s["args"]["parent_span"] for s in spans if s["name"] == "rpc.serve"]
        assert len(call_ids) == 4
        assert set(parents) == call_ids

    def test_exported_trace_validates_with_propagation(self, tracer):
        with AsyncioTransport() as transport:
            def handler(request):
                return RpcResult(payload=b"")

            transport.register("server", handler)
            for _ in range(3):
                transport.call("client", "server", "ping")
        events = tracer.to_trace_events()
        assert validate_trace_events(events, min_propagation=0.95) == []
        coverage = propagation_coverage(events)
        assert coverage == {"serve": 3, "resolved": 3, "fraction": 1.0}


class TestRuntimeAttribution:
    def test_buckets_split_network_queue_handler_crypto(self):
        tracer = Tracer()
        sid = tracer.next_span_id()
        tracer.record_span(
            "rpc.call", category="rpc", track="client",
            wall_start=0.0, wall_end=1.0, span_id=sid, dst="mix0", method="mix",
        )
        tracer.add_remote_spans(4242, [{
            "name": "rpc.serve", "cat": "rpc", "track": "mix0",
            "wall_start": 0.3, "wall_dur": 0.5, "depth": 0,
            "args": {"parent_span": sid, "queue_s": 0.1, "crypto_s": 0.2},
        }])
        buckets = runtime_attribution(tracer)
        assert set(buckets) == {"mix0"}
        entry = buckets["mix0"]
        assert entry["calls"] == 1 and entry["rpcs"] == 1
        assert entry["crypto_s"] == pytest.approx(0.2)
        assert entry["handler_s"] == pytest.approx(0.3)  # 0.5 wall - 0.2 crypto
        assert entry["queue_s"] == pytest.approx(0.1)
        assert entry["network_s"] == pytest.approx(0.4)  # 1.0 - 0.5 - 0.1

    def test_unmatched_call_attributes_to_network(self):
        tracer = Tracer()
        tracer.record_span(
            "rpc.call", category="rpc", track="client",
            wall_start=0.0, wall_end=0.25, dst="pkg0", method="extract",
        )
        buckets = runtime_attribution(tracer)
        assert buckets["pkg0"]["network_s"] == pytest.approx(0.25)
        assert buckets["pkg0"]["rpcs"] == 0


class TestValidatorExtensions:
    def test_negative_ts_is_a_problem(self):
        events = [
            {"ph": "B", "pid": 3, "tid": 1, "ts": -5.0, "name": "x"},
            {"ph": "E", "pid": 3, "tid": 1, "ts": 1.0, "name": "x"},
        ]
        problems = validate_trace_events(events)
        assert any("negative ts" in p for p in problems)

    def test_per_pid_balance_is_enforced(self):
        events = [
            {"ph": "B", "pid": 3, "tid": 1, "ts": 0.0, "name": "x"},
            {"ph": "E", "pid": 4, "tid": 1, "ts": 1.0, "name": "x"},
        ]
        problems = validate_trace_events(events)
        assert any("no open B" in p for p in problems)
        assert any("unclosed B" in p for p in problems)

    def test_propagation_threshold(self):
        events = [
            {"ph": "B", "pid": 2, "tid": 1, "ts": 0.0, "name": "rpc.call",
             "args": {"span_id": 11}},
            {"ph": "E", "pid": 2, "tid": 1, "ts": 1.0, "name": "rpc.call"},
            {"ph": "B", "pid": 9, "tid": 1, "ts": 0.5, "name": "rpc.serve",
             "args": {"parent_span": 11}},
            {"ph": "E", "pid": 9, "tid": 1, "ts": 0.9, "name": "rpc.serve"},
            {"ph": "B", "pid": 9, "tid": 1, "ts": 2.0, "name": "rpc.serve",
             "args": {"parent_span": 999}},
            {"ph": "E", "pid": 9, "tid": 1, "ts": 2.1, "name": "rpc.serve"},
        ]
        assert validate_trace_events(events) == []
        assert validate_trace_events(events, min_propagation=0.5) == []
        problems = validate_trace_events(events, min_propagation=0.95)
        assert any("propagation coverage" in p for p in problems)

    def test_empty_trace_has_full_coverage(self):
        assert propagation_coverage([]) == {"serve": 0, "resolved": 0, "fraction": 1.0}


class TestWorkerTelemetry:
    def test_merge_worker_metrics_prefixes_names(self):
        registry = MetricsRegistry()
        telemetry = WorkerTelemetry(
            pid=1, label="worker-0", endpoints=["mix0"],
            spans=[],
            metrics={
                "counters": {"mix0.rpcs": 4, "mix0.bytes_in": 128},
                "gauges": {},
                "histograms": {"mix0.handler_s": {"count": 4, "sum": 0.4,
                                                  "min": 0.05, "max": 0.2, "mean": 0.1}},
            },
        )
        merge_worker_metrics(registry, telemetry)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["endpoint.mix0.rpcs"] == 4
        assert snapshot["histograms"]["endpoint.mix0.handler_s"]["count"] == 4

    def test_mp_worker_metrics_merged_after_close(self, tracer):
        from repro.net.rpc import MixStub

        specs = [[mix_endpoint_spec("mix0", "seed/mix/0")]]
        transport = MultiprocessTransport(specs)
        try:
            MixStub(transport, "mix0", src="entry").open_round("dialing", 1)
            harvested = transport.harvest_telemetry()
            assert len(harvested) == 1
            assert harvested[0].label == "worker-0"
            assert harvested[0].pid > 2
        finally:
            transport.close()
        # Worker spans landed in the coordinator tracer under the worker pid.
        assert any(s["name"] == "rpc.serve" for s in tracer.remote_spans)
        assert all(s["pid"] == harvested[0].pid for s in tracer.remote_spans)
        # The worker process is declared for the merged export.
        assert tracer.remote_processes[harvested[0].pid]["endpoints"] == ["mix0"]
        # Metrics snapshots merge under the endpoint.<name>. prefix.
        registry = MetricsRegistry()
        for snapshot in transport.worker_metrics.values():
            registry.merge_snapshot(snapshot, prefix="endpoint.")
        merged = registry.snapshot()
        assert merged["counters"]["endpoint.mix0.rpcs"] >= 1
        # Export validates, one process per OS pid.
        events = tracer.to_trace_events()
        assert validate_trace_events(events, min_propagation=0.95) == []
        assert any(e["pid"] == harvested[0].pid for e in events if e["ph"] == "B")

    def test_untraced_mp_run_ships_no_telemetry(self):
        from repro.net.rpc import MixStub

        specs = [[mix_endpoint_spec("mix0", "seed/mix/0")]]
        transport = MultiprocessTransport(specs)
        try:
            MixStub(transport, "mix0", src="entry").open_round("dialing", 1)
            assert transport.harvest_telemetry() == []
            assert transport.worker_metrics == {}
        finally:
            transport.close()
