"""Tests for repro.obs.metrics and the structured-logging helpers."""

from __future__ import annotations

import io
import logging

import pytest

from repro.obs.logging import configure_logging, get_logger, log_fields
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_increments_accumulate(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_rejects_negative_amounts(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestGauge:
    def test_set_and_inc_move_both_directions(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(-3)
        assert gauge.value == 7


class TestHistogram:
    def test_summary_statistics(self):
        histogram = Histogram("h")
        for value in (1.0, 3.0, 2.0):
            histogram.observe(value)
        assert histogram.to_dict() == {
            "count": 3,
            "sum": pytest.approx(6.0),
            "min": 1.0,
            "max": 3.0,
            "mean": pytest.approx(2.0),
        }

    def test_empty_histogram_is_all_zero(self):
        assert Histogram("h").to_dict()["count"] == 0
        assert Histogram("h").mean == 0.0


class TestMetricsRegistry:
    def test_get_or_create_returns_the_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_shorthands(self):
        registry = MetricsRegistry()
        registry.count("hits", 2)
        registry.set_gauge("depth", 5)
        registry.observe("latency", 0.25)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["hits"] == 2
        assert snapshot["gauges"]["depth"] == 5
        assert snapshot["histograms"]["latency"]["count"] == 1

    def test_count_mapping_prefixes_every_key(self):
        registry = MetricsRegistry()
        registry.count_mapping("transport.bytes", {"submit": 10, "scan": 20})
        counters = registry.snapshot()["counters"]
        assert counters == {"transport.bytes.scan": 20, "transport.bytes.submit": 10}

    def test_snapshot_is_sorted_and_json_safe(self):
        import json

        registry = MetricsRegistry()
        registry.count("b")
        registry.count("a")
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "b"]
        json.dumps(snapshot)  # must not raise


class TestLogging:
    def test_log_fields_formats_and_skips_none(self):
        rendered = log_fields(round=3, latency_s=0.123456789, skipped=None, name="x")
        assert rendered == "round=3 latency_s=0.123457 name=x"

    def test_configure_logging_routes_to_the_given_stream(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        try:
            get_logger("test").info("hello %s", log_fields(n=1))
            assert "hello n=1" in stream.getvalue()
            assert "repro.test" in stream.getvalue()
        finally:
            root = get_logger()
            for handler in list(root.handlers):
                root.removeHandler(handler)

    def test_configure_logging_is_idempotent(self):
        stream = io.StringIO()
        configure_logging("debug", stream=stream)
        configure_logging("debug", stream=stream)
        try:
            assert len(get_logger().handlers) == 1
            assert get_logger().level == logging.DEBUG
        finally:
            root = get_logger()
            for handler in list(root.handlers):
                root.removeHandler(handler)

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError):
            configure_logging("chatty")
