"""Tests for the privacy observability layer: ledger, monitor, validator."""

from __future__ import annotations

import json
import math

import pytest

from repro.analysis.dp import privacy_cost
from repro.obs.privacy import (
    PAPER_ACTION_BUDGETS,
    PrivacyLedger,
    budget_consistency,
    is_privacy_report,
    validate_privacy_file,
    validate_privacy_report,
)
from repro.sim.scenarios import make_scenario, run_scenario


class TestPrivacyLedger:
    def test_cumulative_epsilon_matches_privacy_cost_exactly(self):
        """The live spend after k rounds at scale b IS privacy_cost(k, b) --
        the same floats, not approximately."""
        ledger = PrivacyLedger()
        for round_number in range(1, 4):
            record = ledger.record_round(
                protocol="add-friend",
                round_number=round_number,
                laplace_scale=406.0,
                noise_mu=4000.0,
                per_server_noise=[1300, 1310, 1295],
                mailbox_counts=[900, 905],
            )
            assert record.epsilon_cumulative == privacy_cost(round_number, 406.0).epsilon

    def test_epsilon_series_is_monotone(self):
        ledger = PrivacyLedger()
        for round_number in range(6):
            ledger.record_round("dialing", round_number, 2183.0, 25000.0, [8000], [5000])
        series = ledger.protocol_summary()["dialing"]["epsilon_series"]
        assert series == sorted(series)
        assert len(series) == 6

    def test_negative_noise_rejected(self):
        ledger = PrivacyLedger()
        with pytest.raises(ValueError):
            ledger.record_round("add-friend", 0, 406.0, 4000.0, [10, -1], [5])

    def test_protocols_account_independently(self):
        ledger = PrivacyLedger()
        ledger.record_round("add-friend", 0, 406.0, 4000.0, [1], [1])
        ledger.record_round("dialing", 1, 2183.0, 25000.0, [1], [1])
        summary = ledger.protocol_summary()
        assert summary["add-friend"]["rounds"] == 1
        assert summary["dialing"]["rounds"] == 1
        assert summary["add-friend"]["epsilon"] == privacy_cost(1, 406.0).epsilon
        assert summary["dialing"]["epsilon"] == privacy_cost(1, 2183.0).epsilon

    def test_per_server_noise_summed_across_rounds(self):
        ledger = PrivacyLedger()
        ledger.record_round("add-friend", 0, 406.0, 4000.0, [10, 20, 30], [5])
        ledger.record_round("add-friend", 1, 406.0, 4000.0, [1, 2, 3], [5])
        summary = ledger.protocol_summary()["add-friend"]
        assert summary["per_server_noise"] == [11, 22, 33]
        assert summary["noise_total"] == 66

    def test_heterogeneous_scales_recorded(self):
        ledger = PrivacyLedger()
        ledger.record_round("add-friend", 0, 406.0, 4000.0, [1], [1])
        ledger.record_round("add-friend", 1, 100.0, 4000.0, [1], [1])
        summary = ledger.protocol_summary()["add-friend"]
        assert summary["laplace_scales"] == [100.0, 406.0]
        # The heterogeneous spend is at least the homogeneous spend at the
        # tighter (smaller-b, bigger-eps) scale with one round.
        assert summary["epsilon"] > privacy_cost(1, 406.0).epsilon


class TestBudgetConsistency:
    def test_paper_scale_honors_paper_budget(self):
        check = budget_consistency(900, configured_b=406.0, configured_mu=4000.0)
        assert check["consistent"] is True
        assert check["achieved_epsilon"] <= math.log(2) + 1e-9
        assert check["under_noised_factor"] < 1.0

    def test_under_noised_configuration_is_flagged_not_fatal(self):
        check = budget_consistency(900, configured_b=1.0, configured_mu=4.0)
        assert check["consistent"] is False
        assert check["under_noised_factor"] > 100
        assert check["achieved_epsilon"] > math.log(2)

    def test_prescribed_scale_itself_is_consistent(self):
        prescribed = budget_consistency(900, 406.0, 4000.0)["prescribed_b"]
        again = budget_consistency(900, prescribed, 4000.0)
        assert again["consistent"] is True


def _report_from_ledger(ledger: PrivacyLedger, audit=None) -> dict:
    return {"name": "privacy", "data": {"ledger": ledger.report(), "audit": audit}}


def _small_ledger() -> PrivacyLedger:
    ledger = PrivacyLedger()
    for round_number in range(3):
        ledger.record_round("add-friend", round_number, 4.0, 16.0, [3, 2], [4, 5])
    return ledger


class TestValidatePrivacyReport:
    def test_clean_report_passes(self):
        assert validate_privacy_report(_report_from_ledger(_small_ledger())) == []

    def test_not_a_privacy_report(self):
        assert not is_privacy_report({"name": "trace", "data": {}})
        assert is_privacy_report(_report_from_ledger(_small_ledger()))
        problems = validate_privacy_report({"name": "trace", "data": {}})
        assert problems and "not a privacy report" in problems[0]

    def test_tampered_epsilon_series_flagged(self):
        report = _report_from_ledger(_small_ledger())
        series = report["data"]["ledger"]["protocols"]["add-friend"]["epsilon_series"]
        series[1], series[2] = series[2], series[1]  # break monotonicity
        problems = validate_privacy_report(report)
        assert any("monotone" in p for p in problems)

    def test_tampered_cumulative_epsilon_flagged(self):
        report = _report_from_ledger(_small_ledger())
        summary = report["data"]["ledger"]["protocols"]["add-friend"]
        summary["epsilon"] = summary["epsilon"] * 2
        summary["epsilon_series"][-1] = summary["epsilon"]
        problems = validate_privacy_report(report)
        assert any("does not match" in p for p in problems)

    def test_negative_noise_in_rounds_flagged(self):
        report = _report_from_ledger(_small_ledger())
        report["data"]["ledger"]["rounds"][0]["per_server_noise"] = [-2, 1]
        problems = validate_privacy_report(report)
        assert any("negative noise" in p for p in problems)

    def test_audit_advantage_over_bound_flagged(self):
        audit = {
            "points": [
                {"noise_scale": 1.0, "advantage_bound": 0.5, "advantage": 0.9}
            ],
            "all_within_bound": True,
        }
        problems = validate_privacy_report(_report_from_ledger(_small_ledger(), audit))
        assert any("exceeds" in p for p in problems)
        assert any("all_within_bound" in p for p in problems)

    def test_audit_within_bound_passes(self):
        audit = {
            "points": [
                {"noise_scale": 1.0, "advantage_bound": 0.77, "advantage": 0.1}
            ],
            "all_within_bound": True,
        }
        assert validate_privacy_report(_report_from_ledger(_small_ledger(), audit)) == []

    def test_validate_file(self, tmp_path):
        path = tmp_path / "BENCH_privacy.json"
        path.write_text(json.dumps(_report_from_ledger(_small_ledger())))
        assert validate_privacy_file(path) == []
        path.write_text("{not json")
        assert validate_privacy_file(path)


class _BudgetTamper:
    """Monitor that zeroes every session's budget and records the events."""

    def __init__(self):
        self.events = []
        self.deployment = None

    def on_start(self, deployment, net, spec):
        self.deployment = deployment
        for session in deployment.sessions:
            session.action_budgets["add-friend"] = 0
            session.events.subscribe(
                "privacy_budget_exceeded", self.events.append
            )


class TestScenarioIntegration:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(
            "baseline", num_clients=12, friend_pairs=3,
            addfriend_rounds=2, dialing_rounds=1,
        )

    def test_every_run_carries_a_privacy_report(self, result):
        protocols = result.privacy["protocols"]
        assert set(protocols) == {"add-friend", "dialing"}
        assert result.privacy["rounds"]

    def test_ledger_epsilon_matches_analysis_dp(self, result):
        for summary in result.privacy["protocols"].values():
            expected = privacy_cost(summary["rounds"], summary["laplace_scale"]).epsilon
            assert summary["epsilon"] == expected

    def test_report_validates(self, result):
        payload = {"name": "privacy", "data": {"ledger": result.privacy, "audit": None}}
        assert validate_privacy_report(payload) == []

    def test_noise_metrics_published(self, result):
        counters = result.metrics["counters"]
        gauges = result.metrics["gauges"]
        assert counters["mix.noise.count.add-friend"] > 0
        assert any(k.startswith("mix.noise.per_server.") for k in counters)
        assert 0.0 <= gauges["mix.noise.share_of_bytes"] <= 1.0
        assert gauges["privacy.epsilon.add-friend"] == pytest.approx(
            result.privacy["protocols"]["add-friend"]["epsilon"]
        )

    def test_noise_traffic_report(self, result):
        traffic = result.privacy["noise_traffic"]
        assert traffic["noise_envelopes"] > 0
        assert traffic["noise_bytes_estimate"] > 0
        assert 0.0 < traffic["noise_share_of_bytes"] < 1.0

    def test_action_budgets_tracked(self, result):
        budgets = result.privacy["action_budgets"]
        assert budgets["add-friend"]["budget"] == PAPER_ACTION_BUDGETS["add-friend"]
        assert budgets["add-friend"]["actions_total"] >= 3
        assert budgets["add-friend"]["actions_max_per_client"] >= 1
        assert budgets["add-friend"]["clients_over_budget"] == 0

    def test_round_records_carry_observations(self, result):
        rows = result.privacy["rounds"]
        assert all(row["observed_messages"] >= row["noise_added"] >= 0 for row in rows)
        assert any(row["delivered_real"] > 0 for row in rows)

    def test_budget_exceeded_event_fires_once_per_session(self):
        tamper = _BudgetTamper()
        scenario = make_scenario(
            "baseline", num_clients=8, friend_pairs=2,
            addfriend_rounds=1, dialing_rounds=0,
        )
        scenario.monitors.append(tamper)
        result = scenario.run()
        # Exactly once per session that submitted a real request (the two
        # queued senders at minimum), never for cover-only participation.
        acted = sum(
            1
            for session in tamper.deployment.sessions
            if session.action_counts["add-friend"] > 0
        )
        assert acted >= 2
        assert len(tamper.events) == acted
        for event in tamper.events:
            assert event.data["budget"] == 0
            assert event.data["actions"] == 1
        assert result.privacy["action_budgets"]["add-friend"]["clients_over_budget"] == 0

    def test_privacy_budget_spec_derives_noise_scale(self):
        scenario = make_scenario(
            "baseline", num_clients=8, friend_pairs=2,
            addfriend_rounds=1, dialing_rounds=0, privacy_budget=900,
        )
        mu, b = scenario.spec.resolved_noise()
        assert b > 300  # the derived scale, not the 1.0 default
        assert mu > b  # mu tracks b so the clamp floor stays small
        result = scenario.run()
        check = result.privacy["budget_check"]
        assert check["consistent"] is True
        assert check["configured_b"] == b

    def test_privacy_budget_with_under_noise_warns_and_records(self):
        result = run_scenario(
            "baseline", num_clients=8, friend_pairs=2,
            addfriend_rounds=1, dialing_rounds=0,
            privacy_budget=900, noise_b=1.0,
        )
        check = result.privacy["budget_check"]
        assert check["consistent"] is False
        assert check["under_noised_factor"] > 100
        # Warn-and-record: the run still completed and reported.
        assert result.privacy["protocols"]["add-friend"]["rounds"] == 1
