"""Tests for repro.obs.trace: spans, attribution, exports, the validator."""

from __future__ import annotations

import json

import pytest

from repro.obs.trace import (
    CATEGORY_CRYPTO,
    CATEGORY_STAGE,
    CATEGORY_TRANSPORT,
    NULL_SPAN,
    NullTracer,
    Tracer,
    UNSTAGED,
    active_tracer,
    set_active_tracer,
    validate_trace_events,
    validate_trace_file,
)


class FakeClock:
    """A manually advanced simulated clock."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def tracer(clock: FakeClock) -> Tracer:
    return Tracer(clock)


class TestSpanLifecycle:
    def test_sim_duration_tracks_the_injected_clock(self, tracer, clock):
        span = tracer.start("submit", category=CATEGORY_STAGE, track="add-friend")
        clock.advance(1.5)
        tracer.end(span)
        assert span.sim_duration == pytest.approx(1.5)
        assert span.wall_duration >= 0.0

    def test_nesting_assigns_depth_and_child_wall(self, tracer):
        outer = tracer.start("outer")
        inner = tracer.start("inner")
        assert outer.depth == 0
        assert inner.depth == 1
        tracer.end(inner)
        tracer.end(outer)
        assert outer.child_wall == pytest.approx(inner.wall_duration)
        assert outer.self_wall == pytest.approx(outer.wall_duration - inner.wall_duration)

    def test_only_kept_spans_land_in_the_trace(self, tracer):
        with tracer.span("kept"):
            with tracer.span("dropped", keep=False):
                pass
        assert [s.name for s in tracer.spans] == ["kept"]

    def test_end_tolerates_leaked_children(self, tracer):
        outer = tracer.start("outer")
        tracer.start("leaked")  # never ended by its owner
        tracer.end(outer)
        assert tracer._stack == []

    def test_set_and_end_args_merge(self, tracer):
        with tracer.span("op", bytes=10) as span:
            span.set(extra="x")
        assert span.args == {"bytes": 10, "extra": "x"}


class TestAttribution:
    def test_non_stage_spans_bucket_under_the_enclosing_stage(self, tracer, clock):
        with tracer.stage("submit", "add-friend", 1, bytes=100):
            clock.advance(0.2)
            with tracer.span("seal", category=CATEGORY_CRYPTO, keep=False):
                pass
            with tracer.span("rpc", category=CATEGORY_TRANSPORT, keep=False):
                pass
        report = tracer.report()
        bucket = report["attribution"]["add-friend/submit"]
        assert set(bucket) == {"crypto", "transport", "other"}
        assert report["stages"]["add-friend/submit"]["bytes"] == 100
        assert report["stages"]["add-friend/submit"]["sim_s"] == pytest.approx(0.2)

    def test_stage_self_time_is_categorised_as_other(self, tracer):
        with tracer.stage("scan", "dialing", 3):
            pass
        bucket = tracer.report()["attribution"]["dialing/scan"]
        assert set(bucket) == {"other"}

    def test_spans_outside_any_stage_attribute_to_unstaged(self, tracer):
        with tracer.span("seal", category=CATEGORY_CRYPTO, keep=False):
            pass
        assert UNSTAGED in tracer.report()["attribution"]

    def test_stage_totals_accumulate_across_rounds(self, tracer, clock):
        for round_number in (1, 2):
            with tracer.stage("mix", "add-friend", round_number, bytes=50):
                clock.advance(0.1)
        totals = tracer.report()["stages"]["add-friend/mix"]
        assert totals["count"] == 2
        assert totals["bytes"] == 100
        assert totals["sim_s"] == pytest.approx(0.2)

    def test_attribution_self_wall_sums_to_stage_wall(self, tracer):
        with tracer.stage("submit", "add-friend", 1) as stage:
            with tracer.span("seal", category=CATEGORY_CRYPTO, keep=False):
                pass
        bucket = tracer.report()["attribution"]["add-friend/submit"]
        assert sum(bucket.values()) == pytest.approx(stage.wall_duration, abs=1e-4)


class TestChromeExport:
    def build(self, tracer, clock):
        with tracer.stage("submit", "add-friend", 1, bytes=7):
            clock.advance(0.3)
            with tracer.span("seal_many", category=CATEGORY_CRYPTO, track="crypto"):
                clock.advance(0.0)
        with tracer.stage("mix", "add-friend", 1):
            clock.advance(0.1)

    def test_export_passes_the_validator(self, tracer, clock):
        self.build(tracer, clock)
        assert validate_trace_events(tracer.to_trace_events()) == []

    def test_sim_timeline_holds_stage_spans_as_complete_events(self, tracer, clock):
        self.build(tracer, clock)
        xs = [e for e in tracer.to_trace_events() if e["ph"] == "X"]
        assert [e["name"] for e in xs] == ["submit", "mix"]
        assert all(e["pid"] == 1 for e in xs)
        assert xs[0]["dur"] == pytest.approx(0.3e6)

    def test_wall_chart_holds_balanced_pairs_for_every_kept_span(self, tracer, clock):
        self.build(tracer, clock)
        events = tracer.to_trace_events()
        begins = [e for e in events if e["ph"] == "B"]
        ends = [e for e in events if e["ph"] == "E"]
        assert len(begins) == len(ends) == len(tracer.spans)
        assert all(e["pid"] == 2 for e in begins + ends)

    def test_trace_file_roundtrip(self, tracer, clock, tmp_path):
        self.build(tracer, clock)
        path = tracer.write_chrome_trace(tmp_path / "trace.json")
        assert validate_trace_file(path) == []
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"

    def test_jsonl_dump_has_one_span_per_line(self, tracer, clock, tmp_path):
        self.build(tracer, clock)
        path = tracer.write_jsonl(tmp_path / "spans.jsonl")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == len(tracer.spans)
        assert {"name", "cat", "sim_dur", "wall_dur", "self_wall"} <= set(lines[0])


class TestValidator:
    def test_rejects_unbalanced_begin(self):
        events = [{"ph": "B", "pid": 1, "tid": 1, "ts": 0, "name": "a"}]
        assert validate_trace_events(events)

    def test_rejects_mismatched_end_name(self):
        events = [
            {"ph": "B", "pid": 1, "tid": 1, "ts": 0, "name": "a"},
            {"ph": "E", "pid": 1, "tid": 1, "ts": 1, "name": "b"},
        ]
        assert any("mismatch" in p or "b" in p for p in validate_trace_events(events))

    def test_rejects_non_monotonic_timestamps(self):
        events = [
            {"ph": "X", "pid": 1, "tid": 1, "ts": 5, "dur": 1, "name": "a"},
            {"ph": "X", "pid": 1, "tid": 1, "ts": 2, "dur": 1, "name": "b"},
        ]
        assert validate_trace_events(events)

    def test_rejects_unknown_phase(self):
        assert validate_trace_events([{"ph": "Z", "pid": 1, "tid": 1, "ts": 0, "name": "a"}])

    def test_rejects_negative_duration(self):
        assert validate_trace_events(
            [{"ph": "X", "pid": 1, "tid": 1, "ts": 0, "dur": -1, "name": "a"}]
        )

    def test_accepts_a_clean_stream(self):
        events = [
            {"ph": "M", "pid": 1, "tid": 0, "ts": 0, "name": "process_name", "args": {}},
            {"ph": "B", "pid": 1, "tid": 1, "ts": 0, "name": "a"},
            {"ph": "E", "pid": 1, "tid": 1, "ts": 3, "name": "a"},
        ]
        assert validate_trace_events(events) == []

    def test_validate_file_flags_malformed_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert validate_trace_file(path)


class TestActiveTracer:
    def test_default_is_a_disabled_null_tracer(self):
        assert active_tracer().enabled is False

    def test_set_and_restore(self):
        previous = active_tracer()
        tracer = Tracer()
        set_active_tracer(tracer)
        try:
            assert active_tracer() is tracer
        finally:
            set_active_tracer(previous)
        assert active_tracer() is previous

    def test_null_tracer_is_a_no_op(self):
        null = NullTracer()
        span = null.start("x", category=CATEGORY_CRYPTO)
        assert span is NULL_SPAN
        null.end(span, bytes=1)
        with null.span("y"):
            pass
        with null.stage("submit", "add-friend", 1):
            pass
        assert null.report()["span_count"] == 0


class TestScenarioIntegration:
    @pytest.fixture(scope="class")
    def traced_result(self):
        from repro.sim.scenarios import make_scenario

        previous = active_tracer()
        tracer = Tracer()
        set_active_tracer(tracer)
        try:
            result = make_scenario(
                "baseline",
                num_clients=16,
                addfriend_rounds=2,
                dialing_rounds=1,
                friend_pairs=4,
            ).run()
        finally:
            set_active_tracer(previous)
        return tracer, result

    def test_stage_sim_durations_tile_round_latency(self, traced_result):
        tracer, result = traced_result
        stage_sim = sum(s["sim_s"] for s in tracer.report()["stages"].values())
        total_latency = sum(r.latency_s for r in result.rounds)
        assert stage_sim == pytest.approx(total_latency, rel=0.05)

    def test_emitted_trace_is_schema_valid(self, traced_result):
        tracer, _ = traced_result
        assert validate_trace_events(tracer.to_trace_events()) == []

    def test_all_four_stages_appear_per_protocol(self, traced_result):
        tracer, _ = traced_result
        stages = set(tracer.report()["stages"])
        for protocol in ("add-friend", "dialing"):
            for stage in ("announce", "submit", "mix", "scan"):
                assert f"{protocol}/{stage}" in stages

    def test_crypto_and_transport_attribution_present(self, traced_result):
        tracer, _ = traced_result
        totals = tracer.report()["category_totals"]
        assert totals.get("crypto", 0.0) > 0.0
        assert totals.get("transport", 0.0) > 0.0

    def test_round_summaries_carry_the_stage_split(self, traced_result):
        _, result = traced_result
        for stats in result.rounds:
            if stats.aborted:
                continue
            tiles = stats.submit_stage_s + stats.mix_stage_s + stats.scan_stage_s
            assert tiles == pytest.approx(stats.latency_s, rel=1e-6)

    def test_scenario_result_records_metrics_and_bytes_by_method(self, traced_result):
        _, result = traced_result
        assert result.bytes_by_method
        assert sum(result.bytes_by_method.values()) == result.total_bytes_sent
        counters = result.metrics["counters"]
        assert counters["transport.messages_sent"] == result.total_messages_sent
        assert any(name.startswith("crypto.calls.") for name in counters)
        histograms = result.metrics["histograms"]
        assert histograms["round.latency_s.add-friend"]["count"] == 2
