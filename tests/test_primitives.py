"""Tests for the Bloom filter and Laplace noise primitives."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SerializationError
from repro.primitives.bloom import BloomFilter, bits_per_element, optimal_parameters
from repro.primitives.laplace import LaplaceNoise, sample_laplace, sample_noise_count
from repro.utils.rng import DeterministicRng


class TestBloomParameters:
    def test_paper_operating_point_is_48_bits_per_element(self):
        """§5.2: a 1e-10 false-positive rate costs about 48 bits per token."""
        assert 47.0 < bits_per_element(1e-10) < 48.5

    def test_optimal_parameters_scale_linearly(self):
        bits_1k, hashes_1k = optimal_parameters(1000)
        bits_10k, hashes_10k = optimal_parameters(10000)
        assert 9.5 < bits_10k / bits_1k < 10.5
        assert hashes_1k == hashes_10k

    def test_zero_items_gives_minimal_filter(self):
        bits, hashes = optimal_parameters(0)
        assert bits >= 64 and hashes >= 1

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            optimal_parameters(100, 1.5)


class TestBloomFilter:
    def test_no_false_negatives(self, rng):
        """§5.2: Bloom filters never miss an incoming call."""
        bloom = BloomFilter.for_expected_items(500, 1e-6)
        tokens = [rng.read(32) for _ in range(500)]
        bloom.update(tokens)
        assert all(token in bloom for token in tokens)

    def test_false_positive_rate_is_low(self, rng):
        bloom = BloomFilter.for_expected_items(300, 1e-6)
        bloom.update(rng.read(32) for _ in range(300))
        false_positives = sum(1 for _ in range(2000) if rng.read(32) in bloom)
        assert false_positives <= 2

    def test_empty_filter_contains_nothing(self, rng):
        bloom = BloomFilter.for_expected_items(100)
        assert rng.read(32) not in bloom

    def test_serialization_roundtrip(self, rng):
        bloom = BloomFilter.for_expected_items(100, 1e-6)
        bloom.update(rng.read(32) for _ in range(100))
        restored = BloomFilter.from_bytes(bloom.to_bytes())
        assert restored == bloom
        assert restored.size_bytes() == bloom.size_bytes()

    def test_serialization_size_accounting(self):
        bloom = BloomFilter.for_expected_items(1000, 1e-10)
        assert bloom.size_bytes() == len(bloom.to_bytes())
        # ~48 bits/element => ~6000 bytes of bit array.
        assert 5800 < bloom.size_bytes() < 6300

    def test_malformed_encoding_rejected(self):
        with pytest.raises(SerializationError):
            BloomFilter.from_bytes(b"\x00" * 5)
        with pytest.raises(SerializationError):
            BloomFilter.from_bytes(b"\x00" * 8 + b"\x00" * 4 + b"\x01")
        good = BloomFilter(64, 3).to_bytes()
        with pytest.raises(SerializationError):
            BloomFilter.from_bytes(good + b"\x00")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter(0, 3)
        with pytest.raises(ValueError):
            BloomFilter(64, 0)

    def test_fill_ratio_and_fp_estimate(self, rng):
        bloom = BloomFilter.for_expected_items(200, 1e-4)
        assert bloom.fill_ratio() == 0.0
        bloom.update(rng.read(32) for _ in range(200))
        assert 0.0 < bloom.fill_ratio() < 1.0
        assert bloom.expected_false_positive_rate() < 0.01

    @given(st.lists(st.binary(min_size=32, max_size=32), min_size=1, max_size=50, unique=True))
    @settings(max_examples=25, deadline=None)
    def test_membership_property(self, tokens):
        bloom = BloomFilter.for_expected_items(len(tokens), 1e-8)
        bloom.update(tokens)
        assert all(token in bloom for token in tokens)


class TestLaplaceNoise:
    def test_sample_mean_close_to_mu(self, rng):
        noise = LaplaceNoise(mu=4000, b=406)
        samples = [noise.sample(rng) for _ in range(400)]
        mean = sum(samples) / len(samples)
        assert abs(mean - 4000) < 150

    def test_samples_are_nonnegative_integers(self, rng):
        noise = LaplaceNoise(mu=10, b=50)
        for _ in range(200):
            value = noise.sample(rng)
            assert isinstance(value, int)
            assert value >= 0

    def test_zero_scale_is_deterministic(self, rng):
        assert sample_noise_count(100, 0, rng) == 100

    def test_negative_scale_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_laplace(-1, rng)

    def test_laplace_spread_grows_with_b(self, rng):
        tight = [abs(sample_laplace(10, rng)) for _ in range(300)]
        wide = [abs(sample_laplace(1000, rng)) for _ in range(300)]
        assert sum(wide) / len(wide) > sum(tight) / len(tight) * 10

    def test_laplace_mean_absolute_deviation(self, rng):
        """E|X| for Laplace(0, b) is b -- check within sampling error."""
        b = 100
        samples = [abs(sample_laplace(b, rng)) for _ in range(2000)]
        assert abs(sum(samples) / len(samples) - b) < b * 0.15

    def test_expected_count(self):
        assert LaplaceNoise(mu=300, b=10).expected_count() == 300
        assert LaplaceNoise(mu=-5, b=10).expected_count() == 0
