"""Tests for the passive-adversary audit harness (repro.sim.privacy_sweep)."""

from __future__ import annotations

import pytest

from repro.obs.privacy import PassiveObserver
from repro.sim.privacy_sweep import (
    _best_threshold,
    _holdout_advantage,
    audit_table,
    hoeffding_slack,
    run_observer_trial,
    run_privacy_audit,
    run_privacy_sweep,
)
from repro.sim.scenarios import make_scenario

FAST = dict(num_clients=8, addfriend_rounds=1, dialing_rounds=0)


class TestDistinguisherHelpers:
    def test_perfect_separation_gives_advantage_one(self):
        threshold, direction = _best_threshold([5.0, 6.0], [1.0, 2.0])
        assert direction == 1
        assert 2.0 < threshold < 5.0
        assert _holdout_advantage([5.0, 6.0], [1.0, 2.0], threshold, direction) == 1.0

    def test_direction_flips_when_acting_lowers_the_statistic(self):
        threshold, direction = _best_threshold([1.0, 2.0], [5.0, 6.0])
        assert direction == -1
        assert _holdout_advantage([1.0, 2.0], [5.0, 6.0], threshold, direction) == 1.0

    def test_identical_distributions_give_zero_advantage(self):
        threshold, direction = _best_threshold([3.0, 4.0], [3.0, 4.0])
        assert _holdout_advantage([3.0, 4.0], [3.0, 4.0], threshold, direction) == 0.0

    def test_holdout_advantage_clamped_at_zero(self):
        # A threshold that fires backwards on the holdout set scores 0, not
        # negative: the distinguisher can always fall back to guessing.
        assert _holdout_advantage([1.0], [9.0], 5.0, 1) == 0.0

    def test_hoeffding_slack_shrinks_with_samples(self):
        assert hoeffding_slack(4) > hoeffding_slack(16) > hoeffding_slack(64) > 0
        assert hoeffding_slack(10_000) < 0.02


class TestPassiveObserver:
    def test_observer_sees_only_tap_data(self):
        scenario = make_scenario("passive_observer", seed="tap-test")
        observer = PassiveObserver()
        scenario.monitors.append(observer)
        scenario.run()
        assert len(observer.observations) == 1
        obs = observer.observations[0]
        assert set(obs) == {
            "protocol", "round", "aborted", "mailbox_counts",
            "observed_messages", "endpoint_bytes", "method_frames",
        }
        assert obs["observed_messages"] == sum(obs["mailbox_counts"])
        assert obs["observed_messages"] > 0
        assert observer.statistic("add-friend", 0) == float(obs["observed_messages"])
        assert observer.wire_view("add-friend", 0)

    def test_statistic_rejects_missing_round(self):
        observer = PassiveObserver()
        with pytest.raises(ValueError):
            observer.statistic("add-friend", 0)

    def test_paired_arms_differ_only_in_the_target_action(self):
        acts = run_observer_trial(True, noise_b=4.0, trial=0, **FAST)
        idle = run_observer_trial(False, noise_b=4.0, trial=0, **FAST)
        # Both arms are full cover-traffic rounds; the signal is at most the
        # one extra real message plus independent noise draws.
        assert acts > 0 and idle > 0
        assert abs(acts - idle) < 200  # same scale, not wildly different runs


class TestPrivacyAudit:
    def test_too_few_trials_rejected(self):
        with pytest.raises(ValueError):
            run_privacy_audit(1.0, trials=3)

    def test_small_audit_point_schema_and_bound(self):
        point = run_privacy_audit(1.0, trials=4, **FAST)
        assert point["noise_scale"] == 1.0
        assert point["epsilon"] == pytest.approx(2.0)  # sensitivity 2 / b 1
        assert 0.0 <= point["advantage"] <= point["advantage_raw"] <= 1.0
        assert point["advantage_bound"] <= 1.0
        assert point["within_bound"] is True
        assert point["eval_trials_per_arm"] == 2
        assert point["direction"] in (1, -1)

    def test_sweep_assembles_the_table(self):
        sweep = run_privacy_sweep(noise_scales=(0.05,), trials=4, **FAST)
        assert sweep["trials_per_arm"] == 4
        assert len(sweep["points"]) == 1
        under_noised = sweep["points"][0]
        # eps = 2/0.05 = 40: the bound visibly degrades to ~1.
        assert under_noised["advantage_bound"] > 0.99
        assert sweep["all_within_bound"] is True
        headers, rows = audit_table(sweep)
        assert len(headers) == len(rows[0])
        assert rows[0][0] == "0.05"
        assert rows[0][-1] == "yes"
