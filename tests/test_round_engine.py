"""The unified round engine: collision fix, failure paths, and pipelining.

Covers the regressions this layer exists to prevent:

* the cross-protocol mix-round key collision (add-friend round N and dialing
  round N used to share -- and erase -- each other's onion keys),
* mailbox sizing from the round's *participants* rather than every client
  ever created,
* the announced request size coming from wire-format constants instead of an
  arbitrary sampled client,
* ``place_call`` reporting a stale earlier call when a dial never went out,
* the ack-lost (``request_delivered``) submit paths, and
* the pipelined multi-round driver (equivalence on a direct transport,
  speedup on a simulated one, abort isolation mid-schedule).
"""

from __future__ import annotations

import pytest

from repro.core.addfriend import addfriend_body_length
from repro.core.client import Client
from repro.core.config import AlpenhornConfig
from repro.core.coordinator import Deployment
from repro.errors import NetworkError, RoundError
from repro.mixnet.chain import MixChain
from repro.mixnet.noise import NoiseConfig
from repro.mixnet.server import MixServer
from repro.net.links import LinkSpec, NetworkTopology
from repro.net.simulated import SimulatedNetwork
from repro.net.transport import DirectTransport
from repro.pkg.coordinator import PkgCoordinator
from repro.pkg.server import PkgServer
from repro.sim.scenarios import run_scenario
from repro.utils.rng import DeterministicRng


def make_deployment(seed: str = "engine-test", transport=None) -> Deployment:
    return Deployment(
        AlpenhornConfig.for_tests(backend="simulated"), seed=seed, transport=transport
    )


def make_sim_deployment(latency_ms: float = 20, seed: str = "engine-sim") -> Deployment:
    topo = NetworkTopology(default=LinkSpec.of(latency_ms=latency_ms, bandwidth_mbps=100))
    net = SimulatedNetwork(topology=topo, seed=f"{seed}/net")
    return make_deployment(seed=seed, transport=net)


class TestCrossProtocolRoundCollision:
    """The headline bugfix: mix rounds are namespaced by (protocol, round)."""

    def make_entry(self):
        from repro.crypto.ibe.simulated import SimulatedIbe, SimulatedPkgOracle
        from repro.emailsim.provider import EmailNetwork
        from repro.entry.server import EntryServer

        servers = [
            MixServer(f"mix{i}", rng=DeterministicRng(f"collide/{i}")) for i in range(2)
        ]
        chain = MixChain(servers, noise_config=NoiseConfig(0, 0, 0, 0))
        pkgs = [
            PkgServer(
                name="pkg0",
                ibe_backend=SimulatedIbe(SimulatedPkgOracle()),
                email_network=EmailNetwork(),
            )
        ]
        return EntryServer(chain, PkgCoordinator(pkgs)), servers

    def test_abort_of_one_protocol_leaves_the_other_round_intact(self):
        """Both protocols have a round N open; aborting one must not erase
        the other's mix round keys.  (Pre-fix, ``abort_round("dialing", N)``
        closed the bare round N on every mix server, so the add-friend
        round N could no longer run its batch.)"""
        entry, servers = self.make_entry()
        round_number = 7
        entry.announce_round("add-friend", round_number, 1, 64)
        entry.announce_round("dialing", round_number, 1, 32)
        entry.submit("add-friend", round_number, "alice", b"\x01" * 64)

        entry.abort_round("dialing", round_number)
        assert all(not s.has_round_key("dialing", round_number) for s in servers)
        # The concurrently open add-friend round still holds its keys and
        # closes cleanly.
        assert all(s.has_round_key("add-friend", round_number) for s in servers)
        result = entry.close_round("add-friend", round_number)
        assert result.round_number == round_number
        assert all(not s.has_round_key("add-friend", round_number) for s in servers)

    def test_abort_is_idempotent_and_scoped(self):
        entry, servers = self.make_entry()
        entry.announce_round("add-friend", 3, 1, 64)
        entry.abort_round("dialing", 3)  # nothing of this name is open
        entry.abort_round("dialing", 3)
        assert all(s.has_round_key("add-friend", 3) for s in servers)
        entry.close_round("add-friend", 3)

    def test_same_number_rounds_mix_independently(self):
        """Each protocol's round N has its own onion keys end-to-end."""
        entry, servers = self.make_entry()
        entry.announce_round("dialing", 1, 1, 32)
        entry.announce_round("add-friend", 1, 1, 64)
        dialing_publics = [s.round_public_key("dialing", 1) for s in servers]
        addfriend_publics = [s.round_public_key("add-friend", 1) for s in servers]
        assert dialing_publics != addfriend_publics
        entry.close_round("dialing", 1)
        with pytest.raises(RoundError):
            servers[0].round_public_key("dialing", 1)
        entry.close_round("add-friend", 1)

    def test_deployment_interleaves_both_protocols_at_same_round_number(self):
        """Driving both protocols to the same round number works end to end."""
        deployment = make_deployment(seed="interleave")
        alice = deployment.create_client("alice@example.org")
        deployment.create_client("bob@example.org")
        alice.add_friend("bob@example.org")
        deployment.run_addfriend_round()  # add-friend round 1
        deployment.run_dialing_round()  # dialing round 1
        deployment.run_addfriend_round()  # confirmation leg
        assert alice.friends() == ["bob@example.org"]


class TestParticipantScopedMailboxSizing:
    def test_mailbox_count_ignores_offline_clients_queues(self):
        """Queued requests of clients who are offline this round must not
        inflate the round's mailbox count (they cannot submit)."""
        deployment = make_deployment(seed="sizing")
        clients = [
            deployment.create_client(f"user{i}@example.org") for i in range(40)
        ]
        # Every client queues one friend request (simultaneous-add pairs).
        for a, b in zip(clients[0::2], clients[1::2]):
            a.add_friend(b.email)
            b.add_friend(a.email)

        online = clients[:4]  # four queued requests among them
        driver = deployment.round_engine("add-friend").driver
        assert driver.mailbox_count(clients) == 2  # 40 queued to 16 per box
        assert driver.mailbox_count(online) == 1

        summary = deployment.run_addfriend_round(participants=online)
        assert summary.mailbox_count == 1
        assert summary.participants == 4

    def test_churn_scenario_shard_sizing_stays_stable(self):
        """Under churn the shard count tracks the online population's queues:
        at this scale every round fits one mailbox, pre- and post-churn."""
        result = run_scenario(
            "client_churn", num_clients=16, addfriend_rounds=2, dialing_rounds=2,
            friend_pairs=2, seed="churn-sizing",
        )
        assert all(r.mailbox_count == 1 for r in result.rounds)


class TestAnnouncedBodyLength:
    def test_body_length_comes_from_wire_format_constants(self):
        deployment = make_deployment(seed="bodylen")
        client = deployment.create_client("alice@example.org")
        driver = deployment.round_engine("add-friend").driver
        expected = addfriend_body_length(deployment.config.addfriend_request_size)
        assert driver.body_length() == expected
        assert client.addfriend.body_length() == expected

    def test_round_with_only_external_clients_uses_the_right_size(self):
        """A deployment driven purely with externally constructed clients
        (``deployment.clients`` empty) announces the correct fixed size."""
        deployment = make_deployment(seed="external")
        external = []
        for name in ("ext-a@example.org", "ext-b@example.org"):
            deployment.email_network.ensure_provider(name)
            client = Client(email=name, config=deployment.config, ibe=deployment.ibe)
            client.register(deployment.pkg_stubs, deployment.email_network, now=0.0)
            external.append(client)
        external[0].add_friend(external[1].email)

        summary = deployment.run_addfriend_round(participants=external)
        assert summary.participants == 2
        assert summary.failures == 0
        assert summary.mix_result.submitted == 2
        deployment.run_addfriend_round(participants=external)
        assert external[0].friends() == [external[1].email]


class TestPlaceCall:
    def test_place_call_returns_the_matching_call(self):
        deployment = make_deployment(seed="placecall")
        deployment.create_client("alice@example.org")
        bob = deployment.create_client("bob@example.org")
        deployment.befriend("alice@example.org", "bob@example.org")
        placed = deployment.place_call("alice@example.org", "bob@example.org")
        assert placed is not None
        assert placed.friend == "bob@example.org"
        assert bob.received_calls()[-1].session_key == placed.session_key

    def test_failed_dial_after_successful_one_returns_none(self):
        """A dial that never leaves the queue must not report the previous
        call as its result."""
        deployment = make_sim_deployment(latency_ms=10, seed="placecall-fail")
        deployment.config.max_mailbox_lag_rounds = 3  # keep the retry loop short
        alice = deployment.create_client("alice@example.org")
        deployment.create_client("bob@example.org")
        deployment.befriend("alice@example.org", "bob@example.org")

        first = deployment.place_call("alice@example.org", "bob@example.org", intent=0)
        assert first is not None

        # Alice loses the entry server: her token can never be submitted.
        deployment.transport.topology.partition("alice@example.org", "entry")
        second = deployment.place_call("alice@example.org", "bob@example.org", intent=1)
        assert second is None
        assert alice.dialing.pending_in_queue() == 1  # still queued for later
        # Only the first call was ever actually placed.
        assert [c.intent for c in alice.placed_calls()] == [0]


class _AckLossTransport(DirectTransport):
    """Delivers requests but loses the acknowledgement of chosen submits."""

    def __init__(self) -> None:
        super().__init__()
        self.lose_submit_ack_for: set[str] = set()

    def call(self, src, dst, method, payload=b"", obj=None, size_hint=0):
        result = super().call(src, dst, method, payload=payload, obj=obj, size_hint=size_hint)
        if method == "submit" and src in self.lose_submit_ack_for:
            self.lose_submit_ack_for.discard(src)
            exc = NetworkError(f"ack to {src} lost")
            exc.request_delivered = True
            raise exc
        return result


class TestAckLostSubmits:
    """The request_delivered paths: the server acted, only the ack died."""

    def test_addfriend_ack_loss_is_not_a_failure_and_not_resent(self):
        transport = _AckLossTransport()
        deployment = make_deployment(seed="acks", transport=transport)
        alice = deployment.create_client("alice@example.org")
        deployment.create_client("bob@example.org")
        alice.add_friend("bob@example.org")

        transport.lose_submit_ack_for.add("alice@example.org")
        summary = deployment.run_addfriend_round()
        # The submission stands: no failure, no requeue, the request arrived.
        assert summary.failures == 0
        assert summary.mix_result.submitted == 2
        assert alice.addfriend.pending_in_queue() == 0
        # Bob accepted; the confirmation leg completes the friendship.
        deployment.run_addfriend_round()
        assert alice.friends() == ["bob@example.org"]

    def test_dialing_ack_loss_still_delivers_the_call(self):
        transport = _AckLossTransport()
        deployment = make_deployment(seed="ackd", transport=transport)
        alice = deployment.create_client("alice@example.org")
        bob = deployment.create_client("bob@example.org")
        deployment.befriend("alice@example.org", "bob@example.org")
        alice.call("bob@example.org")

        transport.lose_submit_ack_for.add("alice@example.org")
        for _ in range(deployment.config.max_mailbox_lag_rounds):
            summary = deployment.run_dialing_round()
            if alice.dialing.pending_in_queue() == 0:
                break
        assert summary.failures == 0
        assert alice.dialing.pending_in_queue() == 0
        # Exactly one placed call, and it landed.
        assert len(alice.placed_calls()) == 1
        assert bob.received_calls()[-1].caller == "alice@example.org"


class TestPipelinedRounds:
    def test_pipelined_on_direct_transport_forms_friendships(self):
        """On a zero-latency transport the overlap is pure bookkeeping: the
        same friendships form, with the one-round reply lag pipelining adds
        (round N+1's submissions are built before round N's scan results)."""
        deployment = make_deployment(seed="pipe-direct")
        clients = [deployment.create_client(f"u{i}@example.org") for i in range(6)]
        for a, b in zip(clients[0::2], clients[1::2]):
            a.add_friend(b.email)
        summaries = deployment.run_rounds("add-friend", 3, pipelined=True)
        assert [s.round_number for s in summaries] == [1, 2, 3]
        assert not any(s.aborted for s in summaries)
        assert all(s.submissions == 6 for s in summaries)
        for client in clients:
            assert len(client.friends()) == 1

    def test_pipelined_rounds_overlap_on_simulated_network(self):
        """Back-to-back rounds share simulated time: N rounds take less than
        N times one round's latency, bounded below by the slowest stage."""
        deployment = make_sim_deployment(latency_ms=50, seed="pipe-overlap")
        for i in range(6):
            deployment.create_client(f"u{i}@example.org")
        start = deployment.clock
        summaries = deployment.run_rounds("dialing", 4, pipelined=True)
        elapsed = deployment.clock - start
        per_round = [s.latency_s for s in summaries]
        assert all(latency > 0 for latency in per_round)
        # Strict overlap: the schedule is shorter than the rounds laid end
        # to end (each round's latency spans its whole pipeline residency).
        assert elapsed < sum(per_round) * 0.75

    def test_pipelined_scenario_hits_speedup_target(self):
        """The acceptance bar: at 200 ms links the pipelined driver sustains
        >= 1.5x the dialing rounds/sec of the sequential baseline."""
        common = dict(num_clients=16, addfriend_rounds=2, dialing_rounds=6,
                      friend_pairs=2, seed="speedup")
        sequential = run_scenario("pipelined_rounds", pipelined=False, **common)
        pipelined = run_scenario("pipelined_rounds", pipelined=True, **common)
        seq_rps = sequential.throughput["dialing"]["rounds_per_sec"]
        pipe_rps = pipelined.throughput["dialing"]["rounds_per_sec"]
        assert seq_rps > 0
        assert pipe_rps / seq_rps >= 1.5

    def test_aborted_round_does_not_take_down_the_schedule(self):
        """A failed announce mid-schedule yields one aborted summary; the
        rounds before and after it complete normally."""
        deployment = make_sim_deployment(latency_ms=10, seed="pipe-abort")
        deployment.create_client("alice@example.org")
        deployment.create_client("bob@example.org")
        net = deployment.transport

        def participants_for(index: int):
            if index == 1:
                net.topology.partition_endpoint("pkg1")
            elif index == 2:
                net.topology.heal_endpoint("pkg1")
            return None

        summaries = deployment.run_rounds(
            "add-friend", 4, participants_for=participants_for, pipelined=True
        )
        assert [s.round_number for s in summaries] == [1, 2, 3, 4]
        assert [s.aborted for s in summaries] == [False, True, False, False]
        aborted = summaries[1]
        assert aborted.submissions == 0 and aborted.mix_result is None
        # The aborted round left no keys anywhere.
        assert all(
            not mix.has_round_key("add-friend", aborted.round_number)
            for mix in deployment.mix_servers
        )

    def test_sequential_run_rounds_path_matches_single_round_driver(self):
        deployment = make_deployment(seed="pipe-seq")
        deployment.create_client("a@example.org")
        deployment.create_client("b@example.org")
        summaries = deployment.run_rounds("dialing", 2, pipelined=False)
        assert [s.round_number for s in summaries] == [1, 2]
        assert all(s.submissions == 2 for s in summaries)

    def test_per_round_bytes_do_not_double_count_under_overlap(self):
        """Each summary's bytes_sent covers only that round's own stages:
        the per-round figures must sum to no more than the transport total
        even when rounds share simulated time."""
        deployment = make_sim_deployment(latency_ms=40, seed="pipe-bytes")
        for i in range(8):
            deployment.create_client(f"u{i}@example.org")
        before = deployment.transport.stats.bytes_sent
        summaries = deployment.run_rounds("dialing", 4, pipelined=True)
        total = deployment.transport.stats.bytes_sent - before
        assert sum(s.bytes_sent for s in summaries) <= total
        assert all(s.bytes_sent > 0 for s in summaries)

    def test_pkg_failure_scenario_heals_under_pipelining(self):
        """The scenario's partition/heal hooks run on the pipelined drive
        path too: exactly one aborted round, full recovery after."""
        result = run_scenario("pkg_failure", num_clients=14, dialing_rounds=1,
                              friend_pairs=3, seed="pipe-pkgfail", pipelined=True)
        addfriend = result.rounds_for("add-friend")
        assert [r.aborted for r in addfriend] == [False, True, False, False]
        after = [r for r in addfriend if r.round_number > 2]
        assert all(r.failures == 0 for r in after)
        assert result.friendships_confirmed == 3
