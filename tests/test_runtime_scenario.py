"""The --runtime axis through the scenario harness: transport selection,
cross-runtime result parity, and deterministic teardown."""

from __future__ import annotations

import pytest

from repro.core.config import AlpenhornConfig
from repro.core.coordinator import Deployment
from repro.errors import ConfigurationError
from repro.net import DirectTransport, SimulatedNetwork
from repro.sim.scenarios import make_scenario, run_scenario

SMALL = dict(num_clients=8, addfriend_rounds=2, dialing_rounds=2, seed="runtime-parity")


class TestTransportSelection:
    def test_sim_is_the_default(self):
        scenario = make_scenario("baseline")
        assert scenario.spec.runtime == "sim"
        net = scenario.build_transport()
        assert isinstance(net, SimulatedNetwork)

    def test_unknown_runtime_rejected(self):
        scenario = make_scenario("baseline", runtime="carrier-pigeon")
        with pytest.raises(ConfigurationError, match="unknown runtime"):
            scenario.build_transport()

    def test_topology_sculpting_scenarios_require_sim(self):
        for name in ("straggler_mix", "pkg_failure", "geo_distributed"):
            scenario = make_scenario(name, runtime="asyncio")
            with pytest.raises(ConfigurationError, match="simulated topology"):
                scenario.build_transport()

    def test_result_records_the_runtime(self):
        result = run_scenario("baseline", **SMALL)
        report = result.to_dict()
        assert report["runtime"] == "sim"
        assert report["mp_workers"] == 0


class TestRuntimeParity:
    def test_asyncio_matches_sim(self):
        """Same seed, same protocol outcome: transport timing must never
        leak into round decisions."""
        sim = run_scenario("baseline", **SMALL)
        real = run_scenario("baseline", runtime="asyncio", **SMALL)
        assert real.friendships_confirmed == sim.friendships_confirmed
        assert real.calls_delivered == sim.calls_delivered
        assert real.calls_by_method == sim.calls_by_method
        assert real.total_messages_sent == sim.total_messages_sent

    def test_metrics_transport_counters_match_sim(self):
        """The transport.* counters in the metrics snapshot are protocol
        facts (message and byte totals per method), not timing facts, so
        they must match byte-for-byte across runtimes."""
        sim = run_scenario("baseline", **SMALL)
        real = run_scenario("baseline", runtime="asyncio", **SMALL)

        def transport_counters(result):
            counters = result.metrics.get("counters", {})
            return {k: v for k, v in counters.items() if k.startswith("transport.")}

        sim_counters = transport_counters(sim)
        assert sim_counters  # the snapshot actually carries transport totals
        assert transport_counters(real) == sim_counters

    @pytest.mark.slow
    def test_mp_matches_sim(self):
        sim = run_scenario("baseline", **SMALL)
        real = run_scenario("baseline", runtime="mp", mp_workers=2, **SMALL)
        assert real.friendships_confirmed == sim.friendships_confirmed
        assert real.calls_delivered == sim.calls_delivered


class TestRuntimeSweep:
    def test_sweep_asserts_parity_and_reports(self, tmp_path, monkeypatch, capsys):
        import json

        from repro.bench.reporting import results_dir
        from repro.sim.sweep import emit_runtime_report, run_runtime_sweep

        monkeypatch.setenv("BENCH_RESULTS_DIR", str(tmp_path))
        result = run_runtime_sweep(
            runtimes=["sim", "asyncio"],
            client_counts=[8],
            crypto_backends=["pure"],
            seed="t-rsweep",
            addfriend_rounds=1,
            dialing_rounds=1,
        )
        assert result.parity_ok()
        assert [p.runtime for p in result.points] == ["sim", "asyncio"]
        assert result.points[1].parity_with_sim is True
        headers, rows = result.table()
        assert len(rows) == 2 and len(headers) == len(rows[0])
        path = emit_runtime_report(result)
        assert path == str(results_dir() / "BENCH_runtime.json")
        written = json.loads((tmp_path / "BENCH_runtime.json").read_text())
        assert written["data"]["parity_ok"] is True
        assert written["data"]["points"][0]["runtime"] == "sim"
        out = capsys.readouterr().out
        assert "deployment-runtime grid" in out

    def test_unknown_runtime_rejected(self):
        from repro.sim.sweep import run_runtime_sweep

        with pytest.raises(ConfigurationError, match="unknown runtime"):
            run_runtime_sweep(runtimes=["sim", "smoke-signals"])


class TestTeardown:
    def make_deployment(self, transport=None):
        return Deployment(
            AlpenhornConfig.for_tests(backend="simulated"),
            seed="teardown",
            transport=transport or DirectTransport(),
        )

    def test_close_is_idempotent(self):
        deployment = self.make_deployment()
        deployment.close()
        deployment.close()

    def test_context_manager_closes(self):
        closed = []

        class Probe(DirectTransport):
            def close(self):
                closed.append(True)
                super().close()

        with self.make_deployment(Probe()) as deployment:
            assert deployment is not None
        assert closed == [True]

    def test_failed_build_does_not_leak_transport(self, monkeypatch):
        import repro.sim.scenario as scenario_module

        closed = []

        class Probe(DirectTransport):
            def close(self):
                closed.append(True)
                super().close()

        scenario = make_scenario("baseline", **SMALL)
        monkeypatch.setattr(scenario, "build_transport", lambda: Probe())
        monkeypatch.setattr(
            scenario_module,
            "Deployment",
            lambda *args, **kwargs: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        with pytest.raises(RuntimeError, match="boom"):
            scenario.build()
        assert closed == [True]

    def test_crypto_backend_survives_deployment_close(self):
        # Backends are shared cached instances; closing one deployment must
        # not poison the next run that reuses the same backend.
        run_scenario("baseline", **SMALL)
        result = run_scenario("baseline", **SMALL)
        assert result.friendships_confirmed >= 0
