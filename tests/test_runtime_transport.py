"""The real-runtime transports: :class:`AsyncioTransport` over localhost TCP
and :class:`MultiprocessTransport` with spawned worker processes."""

from __future__ import annotations

import time

import pytest

from repro.errors import NetworkError, RemoteCallError, RoundError, TransportTimeoutError
from repro.net import DirectTransport
from repro.net.transport import BatchCall, RpcResult
from repro.runtime import AsyncioTransport, MultiprocessTransport, mix_endpoint_spec


@pytest.fixture
def transport():
    with AsyncioTransport() as t:
        yield t


def register_echo(t, name="server"):
    def handler(request):
        return RpcResult(payload=request.payload, obj=None)

    t.register(name, handler)


class TestAsyncioTransport:
    def test_echo_roundtrip(self, transport):
        register_echo(transport)
        result = transport.call("client", "server", "echo", b"\x01\x02\x03")
        assert result.payload == b"\x01\x02\x03"
        assert result.obj is None

    def test_object_channel(self, transport):
        payload_obj = {"pairing": (1, 2), "mailbox": b"m" * 8}

        def handler(request):
            return RpcResult(payload=b"", obj=payload_obj, size_hint=64)

        transport.register("server", handler)
        result = transport.call("client", "server", "extract")
        assert result.obj == payload_obj

    def test_request_obj_reaches_handler(self, transport):
        seen = []

        def handler(request):
            seen.append(request.obj)
            return RpcResult(payload=b"ok")

        transport.register("server", handler)
        transport.call("client", "server", "put", obj={"k": 3})
        assert seen == [{"k": 3}]

    def test_nested_calls_do_not_deadlock(self, transport):
        # entry -> mix is a real pattern: the outer handler issues a
        # downstream RPC while its own caller is still blocked on it.
        register_echo(transport, "inner")

        def outer_handler(request):
            inner = transport.call("outer", "inner", "echo", request.payload)
            return RpcResult(payload=inner.payload + b"!")

        transport.register("outer", outer_handler)
        result = transport.call("client", "outer", "relay", b"hi")
        assert result.payload == b"hi!"

    def test_remote_errors_reconstruct(self, transport):
        def handler(request):
            raise RoundError("round 7 is closed")

        transport.register("server", handler)
        with pytest.raises(RoundError, match="round 7 is closed"):
            transport.call("client", "server", "submit")

    def test_foreign_errors_become_remote_call_error(self, transport):
        def handler(request):
            raise ValueError("not a protocol error")

        transport.register("server", handler)
        with pytest.raises(RemoteCallError, match="ValueError"):
            transport.call("client", "server", "submit")

    def test_unknown_endpoint_rejected(self, transport):
        with pytest.raises(NetworkError):
            transport.call("client", "nowhere", "ping")

    def test_duplicate_endpoint_rejected(self, transport):
        register_echo(transport)
        with pytest.raises(NetworkError):
            register_echo(transport)

    def test_deadline_expires_on_wall_clock(self, transport):
        def handler(request):
            time.sleep(0.5)
            return RpcResult(payload=b"late")

        transport.register("server", handler)
        with pytest.raises(TransportTimeoutError):
            transport.call("client", "server", "slow", timeout_s=0.05)
        # The connection died with the deadline; a fresh call still works.
        register_echo(transport, "ok")
        assert transport.call("client", "ok", "echo", b"x").payload == b"x"

    def test_call_batch_wave(self, transport):
        register_echo(transport)
        calls = [
            BatchCall(src=f"c{i}", dst="server", method="echo", payload=bytes([i]))
            for i in range(16)
        ]
        outcomes = transport.call_batch(calls)
        assert len(outcomes) == 16
        for i, outcome in enumerate(outcomes):
            assert outcome.error is None
            assert outcome.result.payload == bytes([i])

    def test_bandwidth_accounting_matches_direct_transport(self, transport):
        # The simulated accounting formula (payload + size_hint + frame
        # overhead, no length prefix) is the cross-runtime baseline.
        direct = DirectTransport()
        for t in (transport, direct):
            def handler(request):
                return RpcResult(payload=b"r" * 10, obj={"x": 1}, size_hint=100)

            t.register("server", handler)
            t.call("client", "server", "extract", b"q" * 5, size_hint=7)
        assert transport.stats.bytes_by_method == direct.stats.bytes_by_method
        assert transport.stats.bytes_by_endpoint == direct.stats.bytes_by_endpoint
        assert transport.stats.messages_sent == direct.stats.messages_sent

    def test_clock_is_wall_time(self, transport):
        before = transport.now()
        time.sleep(0.01)
        assert transport.now() > before
        transport.advance(5.0)  # validated no-op: wall time cannot be steered
        with pytest.raises(ValueError):
            transport.advance(-1.0)

    def test_close_idempotent_and_final(self):
        transport = AsyncioTransport()
        register_echo(transport)
        assert transport.call("client", "server", "echo", b"x").payload == b"x"
        transport.close()
        transport.close()
        with pytest.raises(NetworkError):
            transport.call("client", "server", "echo", b"x")


class TestMultiprocessTransport:
    def test_mix_tier_in_worker_process(self):
        from repro.net.rpc import MixStub

        transport = MultiprocessTransport(
            [[mix_endpoint_spec("mix0", "seed/mix/0")]]
        )
        try:
            assert transport.worker_count() == 1
            assert transport.remote_endpoints() == ["mix0"]
            stub = MixStub(transport, "mix0", src="entry")
            pk = stub.open_round("dialing", 1)
            assert stub.round_public_key("dialing", 1) == pk
            # Errors cross the process boundary as their repro.errors type.
            with pytest.raises(RoundError):
                stub.round_public_key("dialing", 9)
        finally:
            transport.close()
        transport.close()  # idempotent after worker reap

    @pytest.mark.slow
    def test_two_workers_round_robin(self):
        from repro.net.rpc import MixStub

        specs = [mix_endpoint_spec(f"mix{i}", f"seed/mix/{i}") for i in range(2)]
        with MultiprocessTransport([[specs[0]], [specs[1]]]) as transport:
            assert transport.worker_count() == 2
            keys = {
                name: MixStub(transport, name, src="entry").open_round("dialing", 1)
                for name in ("mix0", "mix1")
            }
            assert keys["mix0"] != keys["mix1"]
