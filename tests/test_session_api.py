"""The redesigned client API: sessions, handles, events, retry, fan-out.

Covers the contracts the api_redesign introduced:

* the EventBus (subscription, unsubscription, history),
* FriendRequestHandle / CallHandle lifecycle as rounds run,
* friend-request liveness under churn -- retry recovers a request delivered
  into a round its recipient missed; without retry the test demonstrates
  the loss the paper accepts,
* the retry budget (max_attempts / rate tokens) terminating a hopeless
  request,
* the deprecation shims (Deployment.befriend / place_call /
  ApplicationCallbacks) keeping their legacy behavior,
* the parallel per-PKG fan-out: RPC *counts* still scale linearly in PKG
  count (TransportStats.calls_by_method) while the stage's simulated
  wall-clock no longer does.
"""

from __future__ import annotations

import json

import pytest

from repro.api import EventBus, RequestState
from repro.core.callbacks import ApplicationCallbacks
from repro.core.config import AlpenhornConfig
from repro.core.coordinator import Deployment
from repro.errors import ProtocolError
from repro.net.links import LinkSpec, NetworkTopology
from repro.net.simulated import SimulatedNetwork
from repro.sim.scenarios import run_scenario


def make_deployment(seed: str = "session-test", retry: int | None = None, **config_kwargs):
    config = AlpenhornConfig.for_tests(backend="simulated")
    config.addfriend_retry_horizon = retry
    for key, value in config_kwargs.items():
        setattr(config, key, value)
    config.validate()
    return Deployment(config, seed=seed)


def make_sim_deployment(
    pkgs: int = 2, fanout: str = "parallel", latency_ms: float = 200, seed: str = "session-sim"
) -> Deployment:
    servers = (
        ["entry", "cdn", "coordinator"]
        + [f"mix{i}" for i in range(2)]
        + [f"pkg{i}" for i in range(pkgs)]
    )
    topology = NetworkTopology(default=LinkSpec.of(latency_ms=latency_ms, bandwidth_mbps=50))
    for i, a in enumerate(servers):
        for b in servers[i + 1 :]:
            topology.set_link(a, b, LinkSpec.of(latency_ms=2, bandwidth_mbps=1000))
    net = SimulatedNetwork(topology=topology, seed=f"{seed}/net")
    config = AlpenhornConfig.for_tests(num_pkg_servers=pkgs, backend="simulated")
    config.pkg_fanout = fanout
    return Deployment(config, seed=seed, transport=net)


class TestEventBus:
    def test_subscribe_and_emit(self):
        bus = EventBus()
        seen = []
        bus.subscribe("ping", seen.append)
        event = bus.emit("ping", email="a@x.org", round_number=3, extra=1)
        assert seen == [event]
        assert event.email == "a@x.org" and event["extra"] == 1

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        seen = []
        unsubscribe = bus.subscribe("ping", seen.append)
        bus.emit("ping")
        unsubscribe()
        unsubscribe()  # idempotent
        bus.emit("ping")
        assert len(seen) == 1

    def test_subscribe_all_sees_every_type(self):
        bus = EventBus()
        seen = []
        bus.subscribe_all(lambda e: seen.append(e.type))
        bus.emit("a")
        bus.emit("b")
        assert seen == ["a", "b"]

    def test_history_filters_and_last(self):
        bus = EventBus()
        bus.emit("a", email="1")
        bus.emit("b")
        bus.emit("a", email="2")
        assert [e.email for e in bus.history("a")] == ["1", "2"]
        assert len(bus.history()) == 3 and len(bus) == 3
        assert bus.last("a").email == "2"
        assert bus.last("missing") is None


class TestFriendRequestHandleLifecycle:
    @pytest.fixture(scope="class")
    def confirmed(self):
        deployment = make_deployment("handle-lifecycle")
        deployment.create_client("alice@x.org")
        bob = deployment.create_client("bob@x.org")
        alice = deployment.session("alice@x.org")
        bob_session = deployment.session("bob@x.org")
        handle = alice.add_friend("bob@x.org")
        states = [handle.state]
        deployment.run_addfriend_round()
        states.append(handle.state)
        deployment.run_addfriend_round()
        states.append(handle.state)
        return deployment, alice, bob_session, bob, handle, states

    def test_states_progress_to_confirmed(self, confirmed):
        *_, handle, states = confirmed
        assert states == [RequestState.QUEUED, RequestState.DELIVERED, RequestState.CONFIRMED]
        assert handle.confirmed and handle.done()

    def test_submission_metadata(self, confirmed):
        *_, handle, _ = confirmed
        assert handle.attempts == 1
        assert handle.round_submitted == 1
        assert handle.rounds_submitted == [1]
        assert handle.confirmed_round == 2

    def test_confirmed_by_is_the_friends_signing_key(self, confirmed):
        _, _, _, bob, handle, _ = confirmed
        assert handle.confirmed_by == bob.my_signing_key()

    def test_sender_event_order(self, confirmed):
        _, alice, *_ = confirmed
        assert [e.type for e in alice.events.history()] == [
            "request_queued",
            "request_submitted",
            "request_delivered",
            "friend_confirmed",
        ]

    def test_recipient_saw_friend_request_received(self, confirmed):
        _, _, bob_session, *_ = confirmed
        received = bob_session.events.last("friend_request_received")
        assert received is not None
        assert received.email == "alice@x.org" and received["accepted"] is True

    def test_request_accessor_and_idempotence(self):
        deployment = make_deployment("handle-idempotent")
        deployment.create_client("alice@x.org")
        deployment.create_client("bob@x.org")
        alice = deployment.session("alice@x.org")
        handle = alice.add_friend("bob@x.org")
        assert alice.add_friend("bob@x.org") is handle  # still in flight
        assert alice.request("bob@x.org") is handle
        assert alice.pending_requests() == [handle]
        assert alice.client.addfriend.pending_in_queue() == 1  # no duplicate queued

    def test_add_friend_still_validates(self):
        deployment = make_deployment("handle-validate")
        deployment.create_client("alice@x.org")
        with pytest.raises(ProtocolError):
            deployment.session("alice@x.org").add_friend("alice@x.org")


class TestCallHandleLifecycle:
    def test_call_handle_delivers_session_key(self):
        deployment = make_deployment("call-handle")
        deployment.create_client("alice@x.org")
        bob_client = deployment.create_client("bob@x.org")
        alice = deployment.session("alice@x.org")
        bob = deployment.session("bob@x.org")
        alice.add_friend("bob@x.org")
        deployment.run_addfriend_round()
        deployment.run_addfriend_round()

        handle = alice.call("bob@x.org", intent=1)
        assert handle.state is RequestState.QUEUED and handle.session_key is None
        while alice.client.dialing.pending_in_queue():
            deployment.run_dialing_round()
        assert handle.state is RequestState.DELIVERED
        assert handle.placed is not None and handle.placed.intent == 1
        incoming = bob_client.received_calls()[-1]
        assert handle.session_key == incoming.session_key

        event = bob.events.last("call_received")
        assert event is not None and event["call"].caller == "alice@x.org"
        placed_event = alice.events.last("call_placed")
        delivered_event = alice.events.last("call_delivered")
        assert placed_event.round_number == delivered_event.round_number == handle.round_submitted

    def test_call_still_validates_through_session(self):
        deployment = make_deployment("call-validate")
        deployment.create_client("alice@x.org")
        with pytest.raises(ProtocolError):
            deployment.session("alice@x.org").call("stranger@x.org")


class TestRetryLiveness:
    """The ROADMAP item: engine-level re-enqueue of unconfirmed requests."""

    def drive(self, retry: int | None, rounds_after_miss: int = 4):
        deployment = make_deployment("retry-liveness", retry=retry)
        deployment.create_client("alice@x.org")
        deployment.create_client("bob@x.org")
        alice = deployment.session("alice@x.org")
        handle = alice.add_friend("bob@x.org")
        # Round 1: bob offline.  Alice's request is delivered into a round
        # whose IBE key bob never held -- unrecoverable by bob.
        deployment.run_addfriend_round(participants=["alice@x.org"])
        # Later rounds: everyone online.
        for _ in range(rounds_after_miss):
            deployment.run_addfriend_round()
        return deployment, alice, handle

    def test_without_retry_the_request_is_lost(self):
        deployment, alice, handle = self.drive(retry=None)
        assert handle.state is RequestState.DELIVERED  # stuck forever
        assert handle.attempts == 1
        assert deployment.client("bob@x.org").friends() == []
        assert alice.events.history("request_retrying") == []

    def test_with_retry_the_request_confirms(self):
        deployment, alice, handle = self.drive(retry=1)
        assert handle.state is RequestState.CONFIRMED
        assert handle.attempts == 2
        assert deployment.client("bob@x.org").friends() == ["alice@x.org"]
        retrying = alice.events.history("request_retrying")
        assert len(retrying) == 1 and retrying[0].email == "bob@x.org"

    def test_retry_budget_exhaustion_fails_the_handle(self):
        deployment = make_deployment("retry-budget", retry=1)
        deployment.create_client("alice@x.org")
        deployment.create_client("bob@x.org")
        alice = deployment.session("alice@x.org", max_attempts=2)
        handle = alice.add_friend("bob@x.org")
        # Bob never comes online: every delivery is into a missed round.
        for _ in range(6):
            deployment.run_addfriend_round(participants=["alice@x.org"])
        assert handle.state is RequestState.FAILED
        assert handle.attempts == 2  # the budget
        assert alice.events.last("request_failed") is not None
        # The outbox stopped: no queued request lingers.
        assert alice.client.addfriend.pending_in_queue() == 0

    def test_rate_token_config_bounds_attempts(self):
        deployment = make_deployment(
            "retry-ratelimit", retry=1, require_rate_tokens=True, rate_tokens_per_day=3
        )
        deployment.create_client("alice@x.org")
        session = deployment.session("alice@x.org")
        assert session.max_attempts == 3

    def test_churn_scenario_liveness_with_and_without_retry(self):
        """Always-online senders: 100% confirmed with retry, loss without."""
        kwargs = dict(
            num_clients=24, addfriend_rounds=6, dialing_rounds=0,
            friend_pairs=8, seed="live1",
        )
        with_retry = run_scenario("client_churn", retry_horizon=1, **kwargs)
        without = run_scenario("client_churn", retry_horizon=None, **kwargs)
        assert with_retry.friend_requests["initial"]["confirmed_fraction"] == 1.0
        assert without.friend_requests["initial"]["confirmed_fraction"] < 1.0
        assert with_retry.friend_requests["retries"] > 0
        assert without.friend_requests["retries"] == 0
        # The report is JSON-serializable with the liveness section included.
        parsed = json.loads(json.dumps(with_retry.to_dict()))
        assert parsed["retry_horizon"] == 1
        assert parsed["friend_requests"]["initial"]["total"] == 8


class TestRetryIdempotency:
    """Re-sent requests must not desync keywheels (same ephemeral, dedupe)."""

    def test_retry_after_recipient_accepted_first_copy_keeps_wheels_synced(self):
        """The desync scenario: bob answers copy #1, misses a round, alice
        retries.  Copy #2 must carry the same ephemeral and bob must answer
        it identically (not re-anchor), or dialing breaks silently."""
        deployment = make_deployment("retry-idempotent", retry=1)
        deployment.create_client("alice@x.org")
        bob_client = deployment.create_client("bob@x.org")
        alice = deployment.session("alice@x.org")
        handle = alice.add_friend("bob@x.org")
        # Round 1: both online; bob accepts and queues his reply.
        deployment.run_addfriend_round()
        assert bob_client.friends() == ["alice@x.org"]
        # Round 2: bob offline -- his reply cannot go out, alice's handle is
        # past the horizon at round end, so the outbox re-sends.
        deployment.run_addfriend_round(participants=["alice@x.org"])
        # Rounds 3-4: both online; bob's reply and the duplicate resolve.
        deployment.run_addfriend_round()
        deployment.run_addfriend_round()
        assert handle.confirmed and handle.attempts == 2
        wheel_a = alice.client.keywheel.entry("bob@x.org")
        wheel_b = bob_client.keywheel.entry("alice@x.org")
        assert wheel_a.secret == wheel_b.secret
        assert wheel_a.round_number == wheel_b.round_number
        # The synced wheels actually dial.
        call = alice.call("bob@x.org")
        while alice.client.dialing.pending_in_queue():
            deployment.run_dialing_round()
        assert call.session_key == bob_client.received_calls()[-1].session_key

    def test_duplicate_request_is_not_reaccepted(self):
        """Bob reports a duplicate instead of re-anchoring; no reply storm."""
        deployment = make_deployment("retry-dup", retry=1)
        deployment.create_client("alice@x.org")
        bob_client = deployment.create_client("bob@x.org")
        alice = deployment.session("alice@x.org")
        bob = deployment.session("bob@x.org")
        alice.add_friend("bob@x.org")
        deployment.run_addfriend_round()
        deployment.run_addfriend_round(participants=["alice@x.org"])
        for _ in range(3):
            deployment.run_addfriend_round()
        # Bob saw the original and the duplicate, but accepted only once.
        received = bob.events.history("friend_request_received")
        assert len(received) == 1
        # Quiescence: nobody keeps queueing follow-up requests.
        assert alice.client.addfriend.pending_in_queue() == 0
        assert bob_client.addfriend.pending_in_queue() == 0


class TestAbortedRoundHandles:
    def drive_to_abort(self, retry: int | None):
        from repro.errors import NetworkError

        deployment = make_sim_deployment(pkgs=2, fanout="parallel", latency_ms=20,
                                         seed=f"abort-{retry}")
        deployment.config.addfriend_retry_horizon = retry
        deployment.create_client("alice@x.org")
        deployment.create_client("bob@x.org")
        alice = deployment.session("alice@x.org")
        handle = alice.add_friend("bob@x.org")
        # The CDN partitions after submissions: close/publish fails, the
        # round aborts, and every envelope dies with it.
        deployment.transport.topology.partition_endpoint("cdn")
        with pytest.raises(NetworkError):
            deployment.run_addfriend_round()
        deployment.transport.topology.heal_endpoint("cdn")
        return deployment, alice, handle

    def test_abort_without_retry_fails_the_handle(self):
        _, alice, handle = self.drive_to_abort(retry=None)
        assert handle.state is RequestState.FAILED
        failed = alice.events.last("request_failed")
        assert failed is not None and failed["reason"] == "round aborted"

    def test_abort_with_retry_recovers(self):
        deployment, alice, handle = self.drive_to_abort(retry=1)
        assert handle.state is RequestState.SUBMITTED  # awaiting the retry pass
        for _ in range(3):
            deployment.run_addfriend_round()
        assert handle.confirmed
        assert len(alice.events.history("request_retrying")) == 1


class TestLateConfirmation:
    def test_confirmation_in_flight_overrides_failed(self):
        """Budget runs out while bob's reply is in transit: the handle must
        end up agreeing with the address book (CONFIRMED, not FAILED)."""
        deployment = make_deployment("late-confirm", retry=1)
        deployment.create_client("alice@x.org")
        deployment.create_client("bob@x.org")
        alice = deployment.session("alice@x.org", max_attempts=1)
        handle = alice.add_friend("bob@x.org")
        deployment.run_addfriend_round()  # bob accepts, queues his reply
        # Bob offline: the reply stalls, the budget (1 attempt) expires.
        deployment.run_addfriend_round(participants=["alice@x.org"])
        assert handle.state is RequestState.FAILED
        deployment.run_addfriend_round()  # bob's reply finally lands
        assert handle.confirmed
        assert alice.client.friends() == ["bob@x.org"]


class TestTapChaining:
    def test_second_session_does_not_disconnect_the_first(self):
        from repro.api import ClientSession

        deployment = make_deployment("tap-chain")
        deployment.create_client("alice@x.org")
        bob_client = deployment.create_client("bob@x.org")
        direct = ClientSession(bob_client)          # app-constructed session
        registry = deployment.session("bob@x.org")  # registry session (shims use this)
        assert direct is not registry
        deployment.session("alice@x.org").add_friend("bob@x.org")
        deployment.run_addfriend_round()
        for session in (direct, registry):
            event = session.events.last("friend_request_received")
            assert event is not None and event.email == "alice@x.org"


class TestDeprecationShims:
    def test_befriend_warns_and_still_befriends(self):
        deployment = make_deployment("shim-befriend")
        deployment.create_client("alice@x.org")
        deployment.create_client("bob@x.org")
        with pytest.warns(DeprecationWarning):
            handle = deployment.befriend("alice@x.org", "bob@x.org")
        assert deployment.client("alice@x.org").friends() == ["bob@x.org"]
        assert deployment.client("bob@x.org").friends() == ["alice@x.org"]
        assert handle.confirmed  # the shim returns the session handle

    def test_place_call_warns_and_returns_placed_call(self):
        deployment = make_deployment("shim-place-call")
        deployment.create_client("alice@x.org")
        bob = deployment.create_client("bob@x.org")
        with pytest.warns(DeprecationWarning):
            deployment.befriend("alice@x.org", "bob@x.org")
        with pytest.warns(DeprecationWarning):
            placed = deployment.place_call("alice@x.org", "bob@x.org", intent=2)
        assert placed is not None and placed.intent == 2
        assert bob.received_calls()[-1].session_key == placed.session_key

    def test_application_callbacks_warns_but_works(self):
        with pytest.warns(DeprecationWarning):
            callbacks = ApplicationCallbacks(new_friend=lambda email, key: False)
        assert callbacks.on_new_friend("eve@x.org", b"\x01" * 32) is False
        assert callbacks.friend_requests_seen == [("eve@x.org", b"\x01" * 32)]

    def test_legacy_client_callbacks_still_recording(self):
        """Clients constructed the old way keep the recording bridge."""
        deployment = make_deployment("shim-bridge")
        deployment.create_client("alice@x.org")
        bob = deployment.create_client("bob@x.org")
        deployment.client("alice@x.org").add_friend("bob@x.org")
        deployment.run_addfriend_round()
        assert any(email == "alice@x.org" for email, _ in bob.callbacks.friend_requests_seen)


class TestParallelPkgFanout:
    """RPC counts scale with PKG count; simulated wall-clock must not."""

    def one_round(self, pkgs: int, fanout: str):
        deployment = make_sim_deployment(pkgs=pkgs, fanout=fanout, seed=f"fan-{fanout}")
        for i in range(4):
            deployment.create_client(f"u{i}@x.org")
        deployment.client("u0@x.org").add_friend("u1@x.org")
        summary = deployment.run_addfriend_round()
        return deployment, summary

    def test_extraction_rpcs_scale_but_submit_stage_does_not(self):
        dep2, round2 = self.one_round(2, "parallel")
        dep4, round4 = self.one_round(4, "parallel")
        # Linear RPC fan-out: one extract per client per PKG (the stats
        # record both directions, so 2 messages per RPC)...
        assert dep2.transport.stats.calls_by_method["extract"] == 2 * 4 * 2
        assert dep4.transport.stats.calls_by_method["extract"] == 2 * 4 * 4
        # ...but the concurrent phase keeps the submit stage flat.
        assert round4.submit_stage_s < round2.submit_stage_s * 1.25

    def test_sequential_fanout_still_scales_linearly(self):
        _, round2 = self.one_round(2, "sequential")
        _, round4 = self.one_round(4, "sequential")
        assert round4.submit_stage_s > round2.submit_stage_s * 1.5

    def test_parallel_beats_sequential_at_4_pkgs(self):
        _, sequential = self.one_round(4, "sequential")
        _, parallel = self.one_round(4, "parallel")
        assert sequential.submit_stage_s > parallel.submit_stage_s * 1.5

    def test_registration_fans_out_too(self):
        def registration_cost(pkgs: int) -> tuple[float, int]:
            deployment = make_sim_deployment(pkgs=pkgs, fanout="parallel", seed="reg")
            before = deployment.clock
            deployment.create_client("alice@x.org")
            return (
                deployment.clock - before,
                deployment.transport.stats.calls_by_method["begin_registration"],
            )

        cost2, begins2 = registration_cost(2)
        cost4, begins4 = registration_cost(4)
        assert (begins2, begins4) == (2 * 2, 2 * 4)  # both directions recorded
        assert cost4 < cost2 * 1.25

    def test_recovery_deregisters_all_pkgs_concurrently(self):
        deployment = make_sim_deployment(pkgs=4, fanout="parallel", seed="recover")
        deployment.create_client("alice@x.org")
        alice = deployment.client("alice@x.org")
        before = deployment.clock
        alice.recover_from_compromise(deployment.pkg_stubs, deployment.email_network, now=before)
        elapsed = deployment.clock - before
        assert deployment.transport.stats.calls_by_method["deregister"] == 2 * 4
        # One concurrent phase: ~one client-link round trip, not four.
        single_rtt = 2 * 0.2
        assert elapsed < single_rtt * 2.5


class TestSweepSections:
    def test_sweep_records_retry_and_fanout_sections(self, tmp_path, monkeypatch):
        from repro.sim.sweep import emit_sweep_report, run_sweep

        monkeypatch.setenv("BENCH_RESULTS_DIR", str(tmp_path))
        result = run_sweep(
            clients=[8],
            latencies_ms=[60.0],
            addfriend_rounds=1,
            dialing_rounds=1,
            friend_pairs=2,
            seed="t-sections",
            retry_horizons=[0, 1],
            fanout_pkgs=3,
            retry_workload=dict(num_clients=10, friend_pairs=3, addfriend_rounds=4),
            fanout_workload=dict(num_clients=8, friend_pairs=2, addfriend_rounds=1),
        )
        assert [p.retry_horizon for p in result.retry_points] == [0, 1]
        assert result.fanout is not None and result.fanout.pkg_servers == 3
        assert result.fanout.submit_speedup() > 1.5

        report = json.loads(json.dumps(result.to_report()))
        assert len(report["retry_points"]) == 2
        assert report["fanout"]["submit_stage_speedup"] > 1.5
        emit_sweep_report(result)
        written = json.loads((tmp_path / "BENCH_sweep.json").read_text())
        assert written["data"]["fanout"]["pkg_servers"] == 3

    def test_sweep_sections_are_optional(self):
        from repro.sim.sweep import run_sweep

        result = run_sweep(
            clients=[8], latencies_ms=[20.0],
            addfriend_rounds=1, dialing_rounds=1, friend_pairs=2, seed="t-bare",
        )
        assert result.retry_points == [] and result.fanout is None
        report = result.to_report()
        assert report["retry_points"] == [] and report["fanout"] is None
