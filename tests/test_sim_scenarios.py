"""The scenario harness: every named scenario at small scale.

Scenarios run at a few dozen clients here so the whole file stays fast;
the CI smoke and the acceptance run exercise the same code at 60-500
clients via ``python -m repro.sim``.
"""

from __future__ import annotations

import json

import pytest

from repro.net.links import LinkSpec
from repro.sim import SCENARIOS, ScenarioSpec, make_scenario, run_scenario, scenario_names
from repro.sim.scenarios import StragglerMixScenario


class TestHarnessBasics:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            run_scenario("no_such_scenario")

    def test_unknown_spec_override_rejected(self):
        with pytest.raises(TypeError):
            run_scenario("baseline", not_a_field=3)

    def test_registry_lists_all_scenarios(self):
        assert scenario_names() == sorted(SCENARIOS)
        assert {"baseline", "client_churn", "straggler_mix", "pkg_failure",
                "flash_crowd", "geo_distributed"} <= set(scenario_names())

    def test_result_is_json_serializable(self):
        result = run_scenario("baseline", num_clients=8, addfriend_rounds=1,
                              dialing_rounds=1, friend_pairs=2)
        blob = json.dumps(result.to_dict())
        parsed = json.loads(blob)
        assert parsed["scenario"] == "baseline"
        assert len(parsed["rounds"]) == 2

    def test_deterministic_given_a_seed(self):
        a = run_scenario("baseline", num_clients=8, addfriend_rounds=1,
                         dialing_rounds=1, friend_pairs=2, seed="det")
        b = run_scenario("baseline", num_clients=8, addfriend_rounds=1,
                         dialing_rounds=1, friend_pairs=2, seed="det")
        assert [r.latency_s for r in a.rounds] == [r.latency_s for r in b.rounds]
        assert a.total_bytes_sent == b.total_bytes_sent


class TestBaseline:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario("baseline", num_clients=12, addfriend_rounds=2,
                            dialing_rounds=3, friend_pairs=4, seed="t-base")

    def test_rounds_recorded(self, result):
        assert len(result.rounds_for("add-friend")) == 2
        assert len(result.rounds_for("dialing")) == 3

    def test_nonzero_simulated_latencies(self, result):
        assert all(lat > 0.0 for lat in result.round_latencies())

    def test_friendships_and_calls_complete(self, result):
        assert result.friendships_confirmed == 4
        assert result.calls_delivered == 4

    def test_everyone_participates_every_round(self, result):
        assert all(r.submissions == r.participants for r in result.rounds)

    def test_traffic_accounted(self, result):
        assert result.total_bytes_sent > 0
        assert sum(r.bytes_sent for r in result.rounds) <= result.total_bytes_sent

    def test_link_latency_changes_round_latency(self, result):
        slow = run_scenario(
            "baseline", num_clients=12, addfriend_rounds=2, dialing_rounds=3,
            friend_pairs=4, seed="t-base",
            client_link=LinkSpec.of(latency_ms=400, bandwidth_mbps=50, jitter_ms=10),
        )
        fast_af = result.round_latencies("add-friend")
        slow_af = slow.round_latencies("add-friend")
        assert all(s > f * 2 for f, s in zip(fast_af, slow_af))


class TestFaultScenarios:
    def test_client_churn_varies_participation(self):
        result = run_scenario("client_churn", num_clients=12, addfriend_rounds=3,
                              dialing_rounds=2, friend_pairs=4, seed="t-churn")
        online = [r.participants for r in result.rounds]
        assert any(o < 12 for o in online)          # someone was offline
        assert max(online) > min(online)            # participation varied
        # Late joiners registered mid-run.
        assert any(r.participants > 12 for r in result.rounds_for("add-friend")) or \
            result.rounds_for("dialing")[0].participants >= 12

    def test_straggler_mix_inflates_latency(self):
        base = run_scenario("baseline", num_clients=10, addfriend_rounds=1,
                            dialing_rounds=1, friend_pairs=2, seed="t-strag")
        slow = run_scenario("straggler_mix", num_clients=10, addfriend_rounds=1,
                            dialing_rounds=1, friend_pairs=2, seed="t-strag")
        assert slow.round_latencies("add-friend")[0] > base.round_latencies("add-friend")[0] * 2

    def test_straggler_link_resolution(self):
        scenario = make_scenario("straggler_mix", num_clients=4)
        deployment, net = scenario.build()
        scenario.configure(deployment, net)
        resolved = net.topology.link("entry", StragglerMixScenario.straggler)
        assert resolved.latency_s == StragglerMixScenario.straggler_link.latency_s

    def test_pkg_failure_aborts_one_round_and_recovers(self):
        result = run_scenario("pkg_failure", num_clients=10, dialing_rounds=2,
                              friend_pairs=3, seed="t-pkgfail")
        addfriend = result.rounds_for("add-friend")
        aborted = [r for r in addfriend if r.aborted]
        assert len(aborted) == 1
        assert aborted[0].failures == aborted[0].participants
        # Rounds after the heal complete, and queued friendships still form.
        after = [r for r in addfriend if r.round_number > aborted[0].round_number]
        assert after and all(not r.aborted and r.failures == 0 for r in after)
        assert result.friendships_confirmed == 3

    def test_flash_crowd_spikes_real_traffic(self):
        result = run_scenario("flash_crowd", num_clients=14, dialing_rounds=1,
                              friend_pairs=2, seed="t-flash")
        addfriend = result.rounds_for("add-friend")
        flash_round = addfriend[1]  # the scenario floods round index 1
        assert flash_round.delivered_real > addfriend[0].delivered_real
        assert result.friendships_confirmed > 2

    def test_geo_distribution_slows_rounds(self):
        base = run_scenario("baseline", num_clients=9, addfriend_rounds=1,
                            dialing_rounds=1, friend_pairs=2, seed="t-geo")
        geo = run_scenario("geo_distributed", num_clients=9, addfriend_rounds=1,
                           dialing_rounds=1, friend_pairs=2, seed="t-geo")
        assert geo.round_latencies("add-friend")[0] > base.round_latencies("add-friend")[0]


class TestSpecDefaults:
    def test_friend_pairs_default_scales_with_population(self):
        assert ScenarioSpec(num_clients=64).resolved_friend_pairs() == 8
        assert ScenarioSpec(num_clients=4).resolved_friend_pairs() == 1
        assert ScenarioSpec(num_clients=64, friend_pairs=3).resolved_friend_pairs() == 3


class TestPipelinedScenarioAndSweep:
    def test_pipelined_rounds_is_registered(self):
        assert "pipelined_rounds" in scenario_names()
        _, spec = SCENARIOS["pipelined_rounds"]
        assert spec.pipelined

    def test_throughput_recorded_for_both_drivers(self):
        for pipelined in (False, True):
            result = run_scenario("pipelined_rounds", num_clients=8,
                                  addfriend_rounds=1, dialing_rounds=2,
                                  friend_pairs=2, seed="t-pipe",
                                  pipelined=pipelined)
            assert set(result.throughput) == {"add-friend", "dialing", "overall"}
            for stats in result.throughput.values():
                assert stats["rounds"] > 0
                assert stats["busy_s"] > 0
                assert stats["rounds_per_sec"] > 0
            assert json.loads(json.dumps(result.to_dict()))["pipelined"] is pipelined

    def test_sweep_runs_the_grid_and_reports(self, tmp_path, monkeypatch):
        from repro.bench.reporting import results_dir
        from repro.sim import run_sweep
        from repro.sim.sweep import emit_sweep_report

        monkeypatch.setenv("BENCH_RESULTS_DIR", str(tmp_path))
        result = run_sweep(clients=[8], latencies_ms=[20.0, 60.0],
                           addfriend_rounds=1, dialing_rounds=2,
                           friend_pairs=2, seed="t-sweep")
        headers, rows = result.table()
        assert len(rows) == 2 and len(headers) == len(rows[0])
        report = json.loads(json.dumps(result.to_report()))
        assert [p["latency_ms"] for p in report["points"]] == [20.0, 60.0]
        path = emit_sweep_report(result)
        assert path == str(results_dir() / "BENCH_sweep.json")
        written = json.loads((tmp_path / "BENCH_sweep.json").read_text())
        assert written["data"]["scenario"] == "pipelined_rounds"

    def test_pipelining_speeds_up_rounds_on_the_grid(self):
        from repro.sim import run_sweep

        result = run_sweep(clients=[8], latencies_ms=[100.0],
                           addfriend_rounds=1, dialing_rounds=3,
                           friend_pairs=2, seed="t-sweep-speed")
        assert result.points[0].speedup("dialing") > 1.2
