"""Tests for hashing, ChaCha20, Poly1305, and the AEAD construction.

Where the `cryptography` package is available it is used purely as a
*cross-validation oracle*: our from-scratch implementations must agree with
an independent, widely-reviewed implementation on random inputs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aead import AEAD_OVERHEAD, open_sealed, seal
from repro.crypto.chacha20 import chacha20_encrypt, chacha20_stream
from repro.crypto.hashing import KeywheelHash, hkdf, hmac_sha256, sha256, sha512
from repro.crypto.poly1305 import poly1305_mac, poly1305_verify
from repro.errors import CryptoError, DecryptionError

try:
    from cryptography.hazmat.primitives.ciphers.aead import ChaCha20Poly1305 as OracleAead

    HAVE_ORACLE = True
except Exception:  # pragma: no cover - oracle is optional
    HAVE_ORACLE = False


class TestHashing:
    def test_sha256_known_value(self):
        # SHA-256 of the empty string is a standard, well-known constant.
        assert (
            sha256(b"").hex()
            == "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_sha512_length(self):
        assert len(sha512(b"abc")) == 64

    def test_hmac_differs_by_key(self):
        assert hmac_sha256(b"k1", b"msg") != hmac_sha256(b"k2", b"msg")

    def test_hkdf_deterministic_and_length(self):
        a = hkdf(b"input", salt=b"salt", info=b"info", length=64)
        b = hkdf(b"input", salt=b"salt", info=b"info", length=64)
        assert a == b
        assert len(a) == 64

    def test_hkdf_info_separates(self):
        assert hkdf(b"x", info=b"a") != hkdf(b"x", info=b"b")

    def test_hkdf_rejects_bad_length(self):
        with pytest.raises(ValueError):
            hkdf(b"x", length=0)

    def test_keywheel_hashes_are_domain_separated(self):
        secret = b"\x07" * 32
        outputs = {
            KeywheelHash.advance(secret, 5),
            KeywheelHash.dial_token(secret, 5, 0),
            KeywheelHash.session_key(secret, 5, 0),
        }
        assert len(outputs) == 3

    def test_keywheel_token_depends_on_intent_and_round(self):
        secret = b"\x07" * 32
        assert KeywheelHash.dial_token(secret, 5, 0) != KeywheelHash.dial_token(secret, 5, 1)
        assert KeywheelHash.dial_token(secret, 5, 0) != KeywheelHash.dial_token(secret, 6, 0)


class TestChaCha20:
    def test_stream_is_deterministic(self):
        key, nonce = b"\x01" * 32, b"\x02" * 12
        assert chacha20_stream(key, nonce, 100) == chacha20_stream(key, nonce, 100)

    def test_encrypt_decrypt_roundtrip(self):
        key, nonce = b"\x01" * 32, b"\x02" * 12
        message = b"attack at dawn" * 5
        ciphertext = chacha20_encrypt(key, nonce, message)
        assert ciphertext != message
        assert chacha20_encrypt(key, nonce, ciphertext) == message

    def test_counter_offsets_stream(self):
        key, nonce = b"\x01" * 32, b"\x02" * 12
        full = chacha20_stream(key, nonce, 128, initial_counter=0)
        second_block = chacha20_stream(key, nonce, 64, initial_counter=1)
        assert full[64:] == second_block

    def test_key_length_enforced(self):
        with pytest.raises(CryptoError):
            chacha20_stream(b"short", b"\x00" * 12, 16)
        with pytest.raises(CryptoError):
            chacha20_stream(b"\x00" * 32, b"short", 16)


class TestPoly1305:
    def test_mac_is_deterministic_and_verifies(self):
        key = bytes(range(32))
        tag = poly1305_mac(key, b"hello world")
        assert len(tag) == 16
        assert poly1305_verify(key, b"hello world", tag)
        assert not poly1305_verify(key, b"hello worlD", tag)

    def test_key_length_enforced(self):
        with pytest.raises(CryptoError):
            poly1305_mac(b"short", b"msg")


class TestAead:
    def test_roundtrip(self):
        key = b"\x09" * 32
        sealed = seal(key, b"secret message", associated_data=b"header")
        assert open_sealed(key, sealed, associated_data=b"header") == b"secret message"

    def test_overhead_constant(self):
        key = b"\x09" * 32
        for size in (0, 1, 100, 1000):
            sealed = seal(key, b"x" * size)
            assert len(sealed) == size + AEAD_OVERHEAD

    def test_wrong_key_fails(self):
        sealed = seal(b"\x01" * 32, b"msg")
        with pytest.raises(DecryptionError):
            open_sealed(b"\x02" * 32, sealed)

    def test_wrong_associated_data_fails(self):
        key = b"\x01" * 32
        sealed = seal(key, b"msg", associated_data=b"a")
        with pytest.raises(DecryptionError):
            open_sealed(key, sealed, associated_data=b"b")

    def test_tampered_ciphertext_fails(self):
        key = b"\x01" * 32
        sealed = bytearray(seal(key, b"msg"))
        sealed[14] ^= 0x01
        with pytest.raises(DecryptionError):
            open_sealed(key, bytes(sealed))

    def test_truncated_box_fails(self):
        with pytest.raises(DecryptionError):
            open_sealed(b"\x01" * 32, b"tiny")

    def test_distinct_nonces_give_distinct_boxes(self):
        key = b"\x01" * 32
        assert seal(key, b"msg") != seal(key, b"msg")

    @given(st.binary(max_size=256), st.binary(max_size=64))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, message, associated_data):
        key = b"\x42" * 32
        sealed = seal(key, message, associated_data=associated_data)
        assert open_sealed(key, sealed, associated_data=associated_data) == message

    @pytest.mark.skipif(not HAVE_ORACLE, reason="cryptography oracle unavailable")
    @given(st.binary(max_size=200), st.binary(max_size=50), st.binary(min_size=32, max_size=32), st.binary(min_size=12, max_size=12))
    @settings(max_examples=25, deadline=None)
    def test_matches_reference_implementation(self, message, associated_data, key, nonce):
        """Our RFC 8439 construction must agree with the `cryptography` oracle."""
        ours = seal(key, message, associated_data=associated_data, nonce=nonce)
        theirs = OracleAead(key).encrypt(nonce, message, associated_data or None)
        assert ours == nonce + theirs
