"""RPC deadlines and bounded retry on :meth:`Transport.call`."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError, TransportTimeoutError
from repro.net import DirectTransport, LinkSpec, NetworkTopology, SimulatedNetwork
from repro.net.transport import RpcResult


def flaky_handler(failures: int, *, request_delivered: bool = False):
    """A handler that raises ``NetworkError`` for its first *failures* calls."""
    attempts = []

    def handler(request):
        attempts.append(request.method)
        if len(attempts) <= failures:
            exc = NetworkError("injected fault")
            exc.request_delivered = request_delivered
            raise exc
        return RpcResult(payload=b"ok")

    return handler, attempts


class TestRetry:
    def test_retry_recovers_from_transient_faults(self):
        transport = DirectTransport()
        handler, attempts = flaky_handler(2)
        transport.register("server", handler)
        result = transport.call("client", "server", "ping", max_retries=3)
        assert result.payload == b"ok"
        assert len(attempts) == 3
        # Exponential backoff passed on the transport clock: 0.25 + 0.5.
        assert transport.now() == pytest.approx(0.75)

    def test_retries_exhausted_reraises(self):
        transport = DirectTransport()
        handler, attempts = flaky_handler(10)
        transport.register("server", handler)
        with pytest.raises(NetworkError):
            transport.call("client", "server", "ping", max_retries=2)
        assert len(attempts) == 3

    def test_no_retries_by_default(self):
        transport = DirectTransport()
        handler, attempts = flaky_handler(1)
        transport.register("server", handler)
        with pytest.raises(NetworkError):
            transport.call("client", "server", "ping")
        assert len(attempts) == 1

    def test_delivered_failures_never_retried(self):
        # The server acted and only the ack was lost: a blind re-send could
        # double-apply, so the failure surfaces on the first attempt even
        # with retries budgeted.
        transport = DirectTransport()
        handler, attempts = flaky_handler(10, request_delivered=True)
        transport.register("server", handler)
        with pytest.raises(NetworkError) as excinfo:
            transport.call("client", "server", "ping", max_retries=5)
        assert excinfo.value.request_delivered is True
        assert len(attempts) == 1


class TestDeadlines:
    def make_net(self, latency_s: float) -> SimulatedNetwork:
        net = SimulatedNetwork(
            topology=NetworkTopology(default=LinkSpec(latency_s=latency_s)),
            seed="deadlines",
        )
        net.register("server", lambda request: RpcResult(payload=b"ok"))
        return net

    def test_direct_transport_never_expires(self):
        transport = DirectTransport()
        transport.register("server", lambda request: RpcResult(payload=b"ok"))
        result = transport.call("client", "server", "ping", timeout_s=1e-9)
        assert result.payload == b"ok"

    def test_simulated_deadline_expires_on_slow_link(self):
        net = self.make_net(latency_s=1.0)
        with pytest.raises(TransportTimeoutError) as excinfo:
            net.call("client", "server", "ping", timeout_s=0.5)
        # The handler did run before the caller gave up.
        assert excinfo.value.request_delivered is True
        # The caller-visible clock is clamped back to the deadline.
        assert net.now() == pytest.approx(0.5)

    def test_simulated_deadline_met_is_transparent(self):
        net = self.make_net(latency_s=1.0)
        result = net.call("client", "server", "ping", timeout_s=10.0)
        assert result.payload == b"ok"
        assert net.now() == pytest.approx(2.0)  # request + response hops

    def test_deadline_mapping_is_deterministic(self):
        clocks = []
        for _ in range(2):
            net = self.make_net(latency_s=1.0)
            with pytest.raises(TransportTimeoutError):
                net.call("client", "server", "ping", timeout_s=0.5)
            net.call("client", "server", "ping", timeout_s=10.0)
            clocks.append(net.now())
        assert clocks[0] == clocks[1]

    def test_timeout_is_a_round_error(self):
        # The round engine keys abort/requeue decisions on RoundError; a
        # deadline expiry must qualify without special-casing.
        from repro.errors import RoundError

        assert issubclass(TransportTimeoutError, NetworkError)
        assert issubclass(TransportTimeoutError, RoundError)
