"""Tests for repro.utils: byte helpers, serialization, deterministic RNG."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import SerializationError
from repro.utils.bytes import bytes_to_int, constant_time_equal, hexlify, int_to_bytes, xor_bytes
from repro.utils.rng import DeterministicRng, random_bytes
from repro.utils.serialization import Packer, Unpacker


class TestBytes:
    def test_constant_time_equal(self):
        assert constant_time_equal(b"abc", b"abc")
        assert not constant_time_equal(b"abc", b"abd")
        assert not constant_time_equal(b"abc", b"abcd")

    def test_int_roundtrip(self):
        assert bytes_to_int(int_to_bytes(123456, 8)) == 123456

    def test_int_to_bytes_rejects_negative(self):
        with pytest.raises(ValueError):
            int_to_bytes(-1, 4)

    def test_xor_bytes(self):
        assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"

    def test_xor_bytes_length_mismatch(self):
        with pytest.raises(ValueError):
            xor_bytes(b"\x00", b"\x00\x00")

    def test_hexlify_truncates(self):
        assert hexlify(b"\xaa" * 64).endswith("...")
        assert hexlify(b"\xaa") == "aa"

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_int_roundtrip_property(self, value):
        assert bytes_to_int(int_to_bytes(value, 8)) == value


class TestSerialization:
    def test_roundtrip_all_field_types(self):
        packed = (
            Packer()
            .u8(7)
            .u32(1234)
            .u64(2**40)
            .bytes(b"hello")
            .fixed(b"\x01" * 32, 32)
            .str("alice@example.org")
            .pack()
        )
        unpacker = Unpacker(packed)
        assert unpacker.u8() == 7
        assert unpacker.u32() == 1234
        assert unpacker.u64() == 2**40
        assert unpacker.bytes() == b"hello"
        assert unpacker.fixed(32) == b"\x01" * 32
        assert unpacker.str() == "alice@example.org"
        unpacker.done()

    def test_out_of_range_values_rejected(self):
        with pytest.raises(SerializationError):
            Packer().u8(256)
        with pytest.raises(SerializationError):
            Packer().u32(2**32)
        with pytest.raises(SerializationError):
            Packer().u64(2**64)

    def test_fixed_length_mismatch(self):
        with pytest.raises(SerializationError):
            Packer().fixed(b"abc", 4)

    def test_truncated_message(self):
        packed = Packer().bytes(b"hello").pack()
        with pytest.raises(SerializationError):
            Unpacker(packed[:-1]).bytes()

    def test_trailing_bytes_detected(self):
        with pytest.raises(SerializationError):
            Unpacker(b"\x00\x00\x00\x00extra").done()

    def test_invalid_utf8_rejected(self):
        packed = Packer().bytes(b"\xff\xfe").pack()
        with pytest.raises(SerializationError):
            Unpacker(packed).str()

    @given(st.lists(st.binary(max_size=64), max_size=8))
    def test_bytes_roundtrip_property(self, chunks):
        packer = Packer()
        for chunk in chunks:
            packer.bytes(chunk)
        unpacker = Unpacker(packer.pack())
        for chunk in chunks:
            assert unpacker.bytes() == chunk
        unpacker.done()


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(b"seed").read(128)
        b = DeterministicRng(b"seed").read(128)
        assert a == b

    def test_different_seeds_differ(self):
        assert DeterministicRng(b"one").read(32) != DeterministicRng(b"two").read(32)

    def test_fork_is_independent(self):
        parent = DeterministicRng(b"seed")
        child1 = parent.fork("a")
        child2 = parent.fork("b")
        assert child1.read(32) != child2.read(32)

    def test_randint_below_bounds(self, rng):
        for bound in (1, 2, 7, 1000, 2**40):
            for _ in range(20):
                assert 0 <= rng.randint_below(bound) < bound

    def test_randint_rejects_nonpositive(self, rng):
        with pytest.raises(ValueError):
            rng.randint_below(0)

    def test_uniform_in_unit_interval(self, rng):
        samples = [rng.uniform() for _ in range(200)]
        assert all(0.0 <= value < 1.0 for value in samples)
        assert 0.3 < sum(samples) / len(samples) < 0.7

    def test_shuffle_is_permutation(self, rng):
        items = list(range(50))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # overwhelmingly likely

    def test_choice_from_empty_raises(self, rng):
        with pytest.raises(ValueError):
            rng.choice([])

    def test_accepts_str_and_int_seeds(self):
        assert DeterministicRng("abc").read(8) == DeterministicRng("abc").read(8)
        assert DeterministicRng(42).read(8) == DeterministicRng(42).read(8)

    def test_random_bytes_length(self):
        assert len(random_bytes(33)) == 33
