"""The real-runtime wire codec: message bodies, stream framing, object
channel, and error replies (:mod:`repro.runtime.wire` + the stream framing
helpers in :mod:`repro.net.frames`)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

import repro.net.frames as frames_module
from repro.errors import RemoteCallError, RoundError, SerializationError
from repro.net import DirectTransport, Frame, LinkSpec, NetworkTopology, SimulatedNetwork
from repro.net.frames import (
    KIND_ERROR,
    KIND_REQUEST,
    KIND_RESPONSE,
    MAX_WIRE_MESSAGE_BYTES,
    WIRE_LENGTH_BYTES,
    decode_wire_length,
    encode_wire_message,
)
from repro.runtime import wire
from repro.utils.serialization import Packer

names = st.text(min_size=0, max_size=24)
payloads = st.binary(max_size=128)


@st.composite
def wire_frames(draw):
    return Frame(
        kind=draw(st.sampled_from([KIND_REQUEST, KIND_RESPONSE, KIND_ERROR])),
        msg_id=draw(st.integers(min_value=0, max_value=2**64 - 1)),
        src=draw(names),
        dst=draw(names),
        method=draw(names),
        payload=draw(payloads),
    )


class TestMessageCodec:
    @settings(max_examples=200, deadline=None)
    @given(
        frame=wire_frames(),
        obj_flag=st.sampled_from([wire.OBJ_NONE, wire.OBJ_TOKEN, wire.OBJ_PICKLE]),
        obj_data=payloads,
        size_hint=st.integers(min_value=0, max_value=2**64 - 1),
    )
    def test_roundtrip(self, frame, obj_flag, obj_data, size_hint):
        body = wire.encode_message(frame, obj_flag, obj_data, size_hint)
        message = wire.decode_message(body)
        assert message == wire.WireMessage(
            frame=frame, obj_flag=obj_flag, obj_data=obj_data, size_hint=size_hint
        )

    def test_unknown_obj_flag_rejected(self):
        frame = Frame(KIND_REQUEST, 1, "a", "b", "m", b"")
        body = Packer().bytes(frame.to_bytes()).u8(7).bytes(b"").u64(0).pack()
        with pytest.raises(SerializationError):
            wire.decode_message(body)

    def test_trailing_bytes_rejected(self):
        frame = Frame(KIND_REQUEST, 1, "a", "b", "m", b"")
        body = wire.encode_message(frame)
        with pytest.raises(SerializationError):
            wire.decode_message(body + b"\x00")


class TestStreamFraming:
    @settings(max_examples=100, deadline=None)
    @given(body=st.binary(max_size=512))
    def test_length_prefix_roundtrip(self, body):
        on_wire = encode_wire_message(body)
        assert decode_wire_length(on_wire[:WIRE_LENGTH_BYTES]) == len(body)
        assert on_wire[WIRE_LENGTH_BYTES:] == body

    def test_truncated_prefix_rejected(self):
        for truncated in (b"", b"\x00", b"\x00\x00\x00"):
            with pytest.raises(SerializationError):
                decode_wire_length(truncated)

    def test_oversized_declared_length_rejected(self):
        # A hostile peer declares > MAX without ever sending the bytes:
        # the prefix alone must be enough to refuse.
        huge = (MAX_WIRE_MESSAGE_BYTES + 1).to_bytes(WIRE_LENGTH_BYTES, "big")
        with pytest.raises(SerializationError):
            decode_wire_length(huge)
        # The ceiling itself is allowed.
        exact = MAX_WIRE_MESSAGE_BYTES.to_bytes(WIRE_LENGTH_BYTES, "big")
        assert decode_wire_length(exact) == MAX_WIRE_MESSAGE_BYTES

    def test_oversized_body_rejected_on_encode(self, monkeypatch):
        monkeypatch.setattr(frames_module, "MAX_WIRE_MESSAGE_BYTES", 64)
        with pytest.raises(SerializationError):
            frames_module.encode_wire_message(b"x" * 65)
        assert frames_module.encode_wire_message(b"x" * 64)[frames_module.WIRE_LENGTH_BYTES:] == b"x" * 64


class TestObjectChannel:
    def test_token_single_use(self):
        channel = wire.LocalObjectChannel()
        obj = {"pairing": (1, 2)}
        token = channel.put(obj)
        assert len(channel) == 1
        assert channel.take(token) is obj
        assert len(channel) == 0
        with pytest.raises(SerializationError):
            channel.take(token)

    def test_encode_obj_modes(self):
        channel = wire.LocalObjectChannel()
        assert wire.encode_obj(None, channel) == (wire.OBJ_NONE, b"")
        flag, data = wire.encode_obj({"k": 1}, channel)
        assert flag == wire.OBJ_TOKEN
        assert channel.take(data) == {"k": 1}
        flag, data = wire.encode_obj({"k": 2}, None)
        assert flag == wire.OBJ_PICKLE
        frame = Frame(KIND_RESPONSE, 1, "a", "b", "m", b"")
        message = wire.WireMessage(frame=frame, obj_flag=flag, obj_data=data)
        assert wire.decode_obj(message, None) == {"k": 2}

    def test_token_without_channel_rejected(self):
        frame = Frame(KIND_RESPONSE, 1, "a", "b", "m", b"")
        message = wire.WireMessage(frame=frame, obj_flag=wire.OBJ_TOKEN, obj_data=b"\x00" * 8)
        with pytest.raises(SerializationError):
            wire.decode_obj(message, None)


class TestErrorReplies:
    def test_known_error_reconstructs_exactly(self):
        rebuilt = wire.decode_error(wire.encode_error(RoundError("round 3 is closed")))
        assert type(rebuilt) is RoundError
        assert str(rebuilt) == "round 3 is closed"

    def test_unknown_error_becomes_remote_call_error(self):
        rebuilt = wire.decode_error(wire.encode_error(ValueError("bad input")))
        assert type(rebuilt) is RemoteCallError
        assert "ValueError" in str(rebuilt) and "bad input" in str(rebuilt)


class TestCrossTransportByteIdentity:
    def test_request_frames_encode_identically(self):
        """The bytes a request puts on the wire must not depend on the
        runtime: sim, direct, and asyncio all frame through the same codec
        with the same msg-id sequence."""
        from repro.runtime import AsyncioTransport

        simulated = SimulatedNetwork(
            topology=NetworkTopology(default=LinkSpec(latency_s=0.0)), seed="wire-identity"
        )
        with AsyncioTransport() as real:
            transports = [DirectTransport(), simulated, real]
            calls = [
                ("entry", "mix0", "announce", b""),
                ("alice@x", "entry", "submit", b"\x01" * 40),
            ]
            for src, dst, method, payload in calls:
                bodies = {
                    wire.encode_message(t._frame(src, dst, method, payload))
                    for t in transports
                }
                assert len(bodies) == 1
